// Package tensor implements the dense numeric arrays underlying every layer
// in this repository: row-major float64 tensors with shape metadata, matrix
// multiplication tuned for the single-core simulation workloads, im2col /
// col2im for convolution lowering, and the elementwise helpers the neural
// network and device-model packages need.
//
// The package is intentionally small and allocation-transparent: callers that
// sit on hot paths (Monte-Carlo evaluation) reuse destination tensors via the
// *Into variants.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float64 array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim in shape %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data (not copied) with the given shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if t.Size() != len(data) {
		panic(fmt.Sprintf("tensor: shape %v incompatible with %d elements", shape, len(data)))
	}
	return t
}

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Dim returns the length of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape sharing the same backing data.
// Every dimension must be positive and the element count must match exactly;
// a mismatched product panics instead of silently aliasing the backing slice
// under a wrong shape.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: reshape %v -> %v: non-positive dim %d", t.Shape, shape, d))
		}
		n *= d
	}
	if n != t.Size() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes size (%d -> %d elements)", t.Shape, shape, t.Size(), n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the given multi-index (2-D fast path).
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool { return ShapeEq(t.Shape, o.Shape) }

// ShapeEq reports whether two shapes are identical.
func ShapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Add accumulates o into t elementwise.
func (t *Tensor) Add(o *Tensor) {
	mustMatch(t, o, "Add")
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Sub subtracts o from t elementwise.
func (t *Tensor) Sub(o *Tensor) {
	mustMatch(t, o, "Sub")
	for i, v := range o.Data {
		t.Data[i] -= v
	}
}

// Mul multiplies t by o elementwise (Hadamard product).
func (t *Tensor) Mul(o *Tensor) {
	mustMatch(t, o, "Mul")
	for i, v := range o.Data {
		t.Data[i] *= v
	}
}

// Scale multiplies every element by a.
func (t *Tensor) Scale(a float64) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// AddScaled accumulates a*o into t (axpy).
func (t *Tensor) AddScaled(a float64, o *Tensor) {
	mustMatch(t, o, "AddScaled")
	for i, v := range o.Data {
		t.Data[i] += a * v
	}
}

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) float64 {
	mustMatch(t, o, "Dot")
	s := 0.0
	for i, v := range t.Data {
		s += v * o.Data[i]
	}
	return s
}

// SumSquares returns the sum of squared elements.
func (t *Tensor) SumSquares() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return s
}

// AbsMax returns the maximum absolute element value (0 for empty).
func (t *Tensor) AbsMax() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Argmax returns the index of the largest element in a flat view.
func (t *Tensor) Argmax() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

func mustMatch(a, b *Tensor, op string) {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: %s size mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

// MatMul computes C = A·B for A (m×k) and B (k×n), allocating C.
func MatMul(a, b *Tensor) *Tensor {
	c := New(a.Shape[0], b.Shape[1])
	MatMulInto(c, a, b, false)
	return c
}

// MatMulInto computes C = A·B (or C += A·B when accumulate is true) into the
// provided destination. A is m×k, B is k×n, C is m×n. The kernel iterates
// i-k-j so that the inner loop streams both B and C rows sequentially — the
// standard cache-friendly ordering, which is the difference between ~0.3 and
// ~2 GFLOP/s on the single core this repo targets.
func MatMulInto(c, a, b *Tensor, accumulate bool) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(c.Shape) != 2 {
		panic("tensor: MatMul requires rank-2 operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v · %v -> %v", a.Shape, b.Shape, c.Shape))
	}
	if !accumulate {
		c.Zero()
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransAInto computes C = Aᵀ·B (or += when accumulate), with A (k×m),
// B (k×n), C (m×n). Used for weight-gradient accumulation.
func MatMulTransAInto(c, a, b *Tensor, accumulate bool) {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch %v · %v -> %v", a.Shape, b.Shape, c.Shape))
	}
	if !accumulate {
		c.Zero()
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := cd[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransBInto computes C = A·Bᵀ (or += when accumulate), with A (m×k),
// B (n×k), C (m×n). Used for input-gradient backprop.
func MatMulTransBInto(c, a, b *Tensor, accumulate bool) {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %v · %v -> %v", a.Shape, b.Shape, c.Shape))
	}
	if !accumulate {
		c.Zero()
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] += s
		}
	}
}

// Conv2DGeom describes a 2-D convolution lowering.
type Conv2DGeom struct {
	InC, InH, InW int
	KH, KW        int
	Stride, Pad   int
	OutH, OutW    int
}

// NewConv2DGeom computes output geometry for the given input and kernel.
func NewConv2DGeom(inC, inH, inW, kh, kw, stride, pad int) Conv2DGeom {
	g := Conv2DGeom{InC: inC, InH: inH, InW: inW, KH: kh, KW: kw, Stride: stride, Pad: pad}
	g.OutH = (inH+2*pad-kh)/stride + 1
	g.OutW = (inW+2*pad-kw)/stride + 1
	if g.OutH <= 0 || g.OutW <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry collapses: %+v", g))
	}
	return g
}

// ColRows returns the number of rows of the im2col matrix (inC*kh*kw).
func (g Conv2DGeom) ColRows() int { return g.InC * g.KH * g.KW }

// ColCols returns the number of columns of the im2col matrix (outH*outW).
func (g Conv2DGeom) ColCols() int { return g.OutH * g.OutW }

// Im2ColInto lowers a single image x (inC×inH×inW, flat) into cols
// (ColRows × ColCols): column p holds the receptive field of output pixel p.
// Out-of-bounds (padding) elements are 0.
func (g Conv2DGeom) Im2ColInto(cols *Tensor, x []float64) {
	if cols.Shape[0] != g.ColRows() || cols.Shape[1] != g.ColCols() {
		panic("tensor: Im2ColInto destination shape mismatch")
	}
	cd := cols.Data
	nc := g.ColCols()
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := x[c*g.InH*g.InW:]
		for ki := 0; ki < g.KH; ki++ {
			for kj := 0; kj < g.KW; kj++ {
				dst := cd[row*nc : (row+1)*nc]
				p := 0
				for oi := 0; oi < g.OutH; oi++ {
					ii := oi*g.Stride - g.Pad + ki
					if ii < 0 || ii >= g.InH {
						for oj := 0; oj < g.OutW; oj++ {
							dst[p] = 0
							p++
						}
						continue
					}
					base := ii * g.InW
					for oj := 0; oj < g.OutW; oj++ {
						jj := oj*g.Stride - g.Pad + kj
						if jj < 0 || jj >= g.InW {
							dst[p] = 0
						} else {
							dst[p] = plane[base+jj]
						}
						p++
					}
				}
				row++
			}
		}
	}
}

// Col2ImAdd scatters cols (ColRows × ColCols) back into the image gradient
// x (inC*inH*inW, flat), accumulating where receptive fields overlap. This is
// the adjoint of Im2ColInto and is shared by the first- and second-derivative
// backward passes (the paper sums second derivatives over branches the same
// way gradients are summed).
func (g Conv2DGeom) Col2ImAdd(x []float64, cols *Tensor) {
	cd := cols.Data
	nc := g.ColCols()
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := x[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
		for ki := 0; ki < g.KH; ki++ {
			for kj := 0; kj < g.KW; kj++ {
				src := cd[row*nc : (row+1)*nc]
				p := 0
				for oi := 0; oi < g.OutH; oi++ {
					ii := oi*g.Stride - g.Pad + ki
					if ii < 0 || ii >= g.InH {
						p += g.OutW
						continue
					}
					base := ii * g.InW
					for oj := 0; oj < g.OutW; oj++ {
						jj := oj*g.Stride - g.Pad + kj
						if jj >= 0 && jj < g.InW {
							plane[base+jj] += src[p]
						}
						p++
					}
				}
				row++
			}
		}
	}
}
