// Command swim-table1 regenerates the paper's Table 1: accuracy (mean ± std)
// versus normalized write cycles for SWIM, magnitude-based selection, random
// selection and in-situ training on LeNet/MNIST-like, across three device-σ
// levels.
//
// Usage:
//
//	swim-table1 [-trials N] [-sigmas 0.5,0.75,1.0]
//
// Environment: SWIM_MC (trials), SWIM_FAST (CI-scale workloads).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"swim/internal/experiments"
	"swim/internal/mc"
)

func main() {
	trials := flag.Int("trials", 0, "Monte-Carlo trials (0 = default / SWIM_MC)")
	workers := flag.Int("workers", 0, "Monte-Carlo worker goroutines (0 = SWIM_WORKERS or all CPUs)")
	sigmaFlag := flag.String("sigmas", "", "comma-separated device sigma grid (default 0.5,0.75,1.0)")
	flag.Parse()
	mc.SetWorkers(*workers)

	cfg := experiments.DefaultSweep()
	if *trials > 0 {
		cfg.Trials = *trials
	}
	sigmas := experiments.SigmaGrid()
	if *sigmaFlag != "" {
		sigmas = nil
		for _, s := range strings.Split(*sigmaFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "swim-table1: bad sigma %q: %v\n", s, err)
				os.Exit(2)
			}
			sigmas = append(sigmas, v)
		}
	}

	fmt.Println("training LeNet on the MNIST-like task (cached per process)...")
	w := experiments.LeNetMNIST()
	res, err := experiments.Table1(w, sigmas, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-table1:", err)
		os.Exit(1)
	}
	experiments.PrintTable1(os.Stdout, w, sigmas, cfg, res)

	// Headline speedups at the paper's NWC = 0.1 operating point.
	nwcs := cfg.NWCs
	for _, sigma := range sigmas {
		sw := res[sigma]["swim"]
		fmt.Printf("\nsigma %.2f speedups for matching SWIM@NWC=0.1 accuracy:\n", sigma)
		for _, m := range []string{"magnitude", "random", "insitu"} {
			s := experiments.SpeedupAt(sw, res[sigma][m], nwcs, 0.1)
			fmt.Printf("  vs %-10s %.0fx\n", m, s)
		}
	}
}
