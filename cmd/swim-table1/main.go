// Command swim-table1 regenerates the paper's Table 1: accuracy (mean ± std)
// versus normalized write cycles on LeNet/MNIST-like, across three device-σ
// levels, for any set of registered programming policies.
//
// Usage:
//
//	swim-table1 [-trials N] [-sigmas 0.5,0.75,1.0] [-policies swim,magnitude,random,insitu]
//	            [-nonideal drift:nu=0.05+stuckat:p=0.001] [-readtime 3600]
//
// Policies resolve through the program registry; -policies list prints the
// registered names. -nonideal applies a '+'-stacked device-nonideality
// scenario (package nonideal; 'list' prints the model names) read at
// -readtime seconds after programming. Environment: SWIM_MC (trials),
// SWIM_FAST (CI-scale workloads).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"swim/internal/calib"
	"swim/internal/experiments"
	"swim/internal/kernel"
	"swim/internal/mc"
	"swim/internal/nonideal"
	"swim/internal/program"
)

func main() {
	trials := flag.Int("trials", 0, "Monte-Carlo trials (0 = default / SWIM_MC)")
	workers := flag.Int("workers", 0, "Monte-Carlo worker goroutines (0 = SWIM_WORKERS or all CPUs)")
	sigmaFlag := flag.String("sigmas", "", "comma-separated device sigma grid (default 0.5,0.75,1.0)")
	policiesFlag := flag.String("policies", "",
		"comma-separated programming policies from the registry (default swim,magnitude,random,insitu; 'list' prints the registered names)")
	nonidealFlag := flag.String("nonideal", "",
		"'+'-stacked device-nonideality scenario applied at read time ('list' prints the registered models)")
	readTime := flag.Float64("readtime", 0, "read time in seconds after programming for -nonideal")
	kernelFlag := flag.String("kernel", "",
		"kernel backend for the eval plans' dense primitives (bit-identical to scalar; 'list' prints registered backends)")
	calibFlag := flag.String("calib", "",
		"calibration model fitting a digital read-out correction, e.g. gainoffset or pertile:probes=16 ('list' prints registered models)")
	stateFlag := flag.String("state", "",
		"directory of serialized workload states: restore instead of retraining, persist after training (see swim-train -state)")
	flag.Parse()
	mc.SetWorkers(*workers)
	experiments.SetStateDir(*stateFlag)

	if *policiesFlag == "list" {
		fmt.Println(strings.Join(program.Names(), "\n"))
		return
	}
	scenario, listing, err := nonideal.FromFlag(*nonidealFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-table1:", err)
		os.Exit(2)
	}
	if listing != "" {
		fmt.Println(listing)
		return
	}
	kern, klisting, err := kernel.FromFlag(*kernelFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-table1:", err)
		os.Exit(2)
	}
	if klisting != "" {
		fmt.Println(klisting)
		return
	}
	cm, cok, clisting, err := calib.FromFlag(*calibFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-table1:", err)
		os.Exit(2)
	}
	if clisting != "" {
		fmt.Println(clisting)
		return
	}
	cfg := experiments.DefaultSweep()
	cfg.Scenario = experiments.ReadScenario{Models: scenario, ReadTime: *readTime}
	if *kernelFlag != "" {
		cfg.Kernel = kern.Spec()
	}
	if cok {
		cfg.Calib = cm.Spec()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	policies, err := program.ResolveNames(*policiesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-table1:", err)
		os.Exit(2)
	}
	cfg.Policies = policies
	sigmas := experiments.SigmaGrid()
	if *sigmaFlag != "" {
		sigmas = nil
		for _, s := range strings.Split(*sigmaFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "swim-table1: bad sigma %q: %v\n", s, err)
				os.Exit(2)
			}
			sigmas = append(sigmas, v)
		}
	}

	fmt.Println("training LeNet on the MNIST-like task (cached per process)...")
	w := experiments.LeNetMNIST()
	res, err := experiments.Table1(w, sigmas, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-table1:", err)
		os.Exit(1)
	}
	experiments.PrintTable1(os.Stdout, w, sigmas, cfg, res)

	// Headline speedups at the paper's NWC = 0.1 operating point, against
	// every other policy in the run.
	if len(policies) == 0 {
		policies = experiments.Methods
	}
	if len(policies) < 2 {
		return
	}
	ref := policies[0]
	nwcs := cfg.NWCs
	for _, sigma := range sigmas {
		sw := res[sigma][ref]
		fmt.Printf("\nsigma %.2f speedups for matching %s@NWC=0.1 accuracy:\n", sigma, ref)
		for _, m := range policies[1:] {
			s := experiments.SpeedupAt(sw, res[sigma][m], nwcs, 0.1)
			fmt.Printf("  vs %-10s %.0fx\n", m, s)
		}
	}
}
