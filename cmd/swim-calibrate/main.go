// Command swim-calibrate reports the write-verify device model statistics
// against the two anchors the paper adopts from Shim et al. (§4.1): an
// average of about ten write cycles per weight and a post-write-verify
// residual spread of σ ≈ 0.03. These anchors underpin the NWC accounting
// every program-pipeline policy is billed by; -list-policies prints the
// registered policy names the other swim-* tools accept.
//
// With -nonideal, it additionally prints the device-level degradation of a
// '+'-stacked nonideality scenario: the mean ± std conductance read back at
// each level and time point, the raw material the scenario sweeps build on.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"swim/internal/device"
	"swim/internal/experiments"
	"swim/internal/mc"
	"swim/internal/nonideal"
	"swim/internal/program"
	"swim/internal/rng"
	"swim/internal/stat"
)

// printNonideal renders the scenario's conductance transfer table: one row
// per programmed level, one mean ± std column per read time, aggregated
// over many devices of one trial instance (per-device variation is the
// spread the models inject).
func printNonideal(m device.Model, models []nonideal.Nonideality, times []float64) {
	inst := nonideal.NewTrials(models, m, rng.New(0xdeca7))
	fmt.Printf("\nnonideality transfer (%s), %d devices per cell\n", nonideal.StackString(models), 2000)
	fmt.Printf("%-6s", "level")
	for _, t := range times {
		fmt.Printf(" %16s", "t="+experiments.FormatDuration(t))
	}
	fmt.Println()
	for level := 0; level <= m.DeviceLevels(0); level++ {
		fmt.Printf("%-6d", level)
		for _, t := range times {
			var w stat.Welford
			for dev := 0; dev < 2000; dev++ {
				w.Add(inst.Apply(dev, float64(level), t))
			}
			fmt.Printf(" %8.3f ± %5.3f", w.Mean(), w.Std())
		}
		fmt.Println()
	}
}

func main() {
	n := flag.Int("n", 100000, "simulated weights per row")
	bits := flag.Int("bits", 4, "weight precision M")
	listPolicies := flag.Bool("list-policies", false,
		"print the registered programming policies (the -policy values other tools accept) and exit")
	nonidealFlag := flag.String("nonideal", "",
		"'+'-stacked device-nonideality scenario to characterize ('list' prints the registered models)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = SWIM_WORKERS or all CPUs)")
	flag.Parse()
	mc.SetWorkers(*workers)

	if *listPolicies {
		fmt.Println(strings.Join(program.Names(), "\n"))
		return
	}
	scenario, listing, err := nonideal.FromFlag(*nonidealFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-calibrate:", err)
		os.Exit(2)
	}
	if listing != "" {
		fmt.Println(listing)
		return
	}

	fmt.Printf("device model calibration (M=%d, K=4, tolerance 0.06)\n\n", *bits)
	fmt.Printf("%-8s %-22s %-22s %s\n", "sigma", "uniform magnitudes", "gaussian weights", "no-verify noise (LSB)")
	// The σ rows are independent; mc.Map runs them in parallel with fixed
	// per-row seeds, so the printed table is identical at any worker count.
	sigmas := []float64{0.1, 0.2, 0.5, 0.75, 1.0}
	rows := mc.Map(0xca11b, len(sigmas), func(i int, _ *rng.Source) string {
		sigma := sigmas[i]
		m := device.Default(*bits, sigma)
		u := m.Calibrate(*n, rng.New(uint64(1+i)))
		g := m.CalibrateGaussian(*n, rng.New(uint64(100+i)))
		return fmt.Sprintf("%-8.2f %6.2f cyc / %.4f res %6.2f cyc / %.4f res %8.3f",
			sigma, u.MeanCycles, u.ResidualStd, g.MeanCycles, g.ResidualStd, m.NoiseStd())
	})
	for _, row := range rows {
		fmt.Println(row)
	}
	fmt.Println("\npaper anchors: ~10 cycles per weight, residual sigma ~0.03 after write-verify")

	if len(scenario) > 0 {
		printNonideal(device.Default(*bits, 0.5), scenario, []float64{0, 3600, 86400})
	}
}
