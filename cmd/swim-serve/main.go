// Command swim-serve is the deterministic sweep-serving daemon: a
// long-running HTTP/JSON service that owns the trained registry workloads
// and answers sweep/scenario/table1/fig2 requests from a bounded job queue,
// splitting the Monte-Carlo worker budget fairly across concurrent jobs.
// Responses are the same versioned result records the CLIs emit — a request
// answered over HTTP is bit-identical to the equivalent swim-scenario
// invocation, and repeated requests are served from a canonical-hash cache.
//
// Usage:
//
//	swim-serve [-addr 127.0.0.1:8080] [-jobs 2] [-queue 64] [-workers N]
//	           [-state dir] [-drain 30s] [-portfile path] [-job-ttl 1h]
//	           [-coordinator url1,url2,...] [-shard-trials N] [-shard-target 1s]
//	           [-kernel scalar|blocked|parallel[:workers=N]]
//	           [-cache-max-entries N] [-cache-max-bytes N] [-debug-addr addr]
//
// With -coordinator, the daemon computes nothing locally: each job's trial
// space is split into ranges dispatched as POST /v1/shards calls across the
// listed worker daemons (any swim-serve serves shards), failed shards are
// retried on surviving workers, and the merged envelope is byte-identical
// to single-node execution. Completed shards are journalled under
// -state/coord so a killed coordinator resumes instead of recomputing.
// Shard sizes autotune toward -shard-target per round trip unless
// -shard-trials pins them (negative -shard-target disables tuning).
//
// Observability: GET /v1/metrics serves the flat JSON snapshot by default
// and the Prometheus text exposition under Accept: text/plain (or
// ?format=prometheus); GET /v1/jobs/{id}/events streams job progress as
// Server-Sent Events. -debug-addr exposes net/http/pprof on a separate
// listener (off by default, never mounted on the API mux).
//
// Submit work as JSON request records:
//
//	curl -s -XPOST localhost:8080/v1/jobs -d '{
//	  "kind": "scenario", "workload": "lenet",
//	  "scenarios": "none;drift", "times": [0, 3600],
//	  "policies": ["swim", "noverify"], "trials": 8, "seed": 4000
//	}'
//	curl -s "localhost:8080/v1/jobs/job-1?wait=1"
//	curl -s localhost:8080/v1/jobs/job-1/result
//
// -state points at a directory of serialized workload states (written by
// swim-train -state or a previous daemon run), so startup serves from
// restored models instead of retraining. SIGINT/SIGTERM drain gracefully:
// intake stops, in-flight jobs finish, and after -drain the rest are
// cancelled. Environment: SWIM_MC / SWIM_EVAL / SWIM_FAST size the
// default workloads exactly as they do for the CLIs.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"swim/internal/experiments"
	"swim/internal/kernel"
	"swim/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	jobs := flag.Int("jobs", 2, "jobs executed concurrently (each gets workers/jobs worker goroutines)")
	queue := flag.Int("queue", 64, "queued-job backlog bound (further submissions get 503)")
	workers := flag.Int("workers", 0, "total Monte-Carlo worker budget split across jobs (0 = all CPUs)")
	stateFlag := flag.String("state", "",
		"directory of serialized workload states: restore instead of retraining, persist after training (see swim-train -state)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain window before in-flight jobs are cancelled")
	portfile := flag.String("portfile", "", "write the bound address to this file once listening (for scripts)")
	coordinator := flag.String("coordinator", "",
		"comma-separated worker base URLs: run as a coordinator, sharding jobs across them instead of computing locally")
	shardTrials := flag.Int("shard-trials", 0, "trials per dispatched shard in coordinator mode (0 = auto)")
	shardTarget := flag.Duration("shard-target", 0,
		"coordinator shard-size autotuning target duration per shard (0 = 1s default, negative = disable tuning)")
	jobTTL := flag.Duration("job-ttl", 0, "evict finished jobs from listings after this long (0 = 1h, negative = never)")
	kernelFlag := flag.String("kernel", "",
		"daemon-default kernel backend for requests that leave the axis empty (bit-identical to scalar; 'list' prints registered backends)")
	cacheEntries := flag.Int("cache-max-entries", 0, "LRU bound on result-cache entries (0 = unbounded)")
	cacheBytes := flag.Int64("cache-max-bytes", 0, "LRU bound on encoded result-cache bytes (0 = unbounded)")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof on this separate address (empty = off; never exposed on the API listener)")
	flag.Parse()

	kern, klisting, err := kernel.FromFlag(*kernelFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-serve:", err)
		os.Exit(2)
	}
	if klisting != "" {
		fmt.Println(klisting)
		return
	}
	kernelSpec := ""
	if *kernelFlag != "" {
		kernelSpec = kern.Spec()
	}

	experiments.SetStateDir(*stateFlag)
	total := *workers
	if total <= 0 {
		total = runtime.NumCPU()
	}

	var workerURLs []string
	if *coordinator != "" {
		for _, u := range strings.Split(*coordinator, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workerURLs = append(workerURLs, u)
			}
		}
	}

	s := serve.New(serve.Config{
		MaxConcurrent:   *jobs,
		QueueDepth:      *queue,
		TotalWorkers:    total,
		DrainTimeout:    *drain,
		WorkerURLs:      workerURLs,
		ShardTrials:     *shardTrials,
		ShardTarget:     *shardTarget,
		JobTTL:          *jobTTL,
		StateDir:        *stateFlag,
		Kernel:          kernelSpec,
		CacheMaxEntries: *cacheEntries,
		CacheMaxBytes:   *cacheBytes,
	})

	if *debugAddr != "" {
		// Profiling stays on its own mux and listener: the API surface never
		// gains the pprof routes, and the debug port can stay firewalled.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swim-serve:", err)
			os.Exit(1)
		}
		fmt.Printf("swim-serve pprof on %s\n", dl.Addr())
		go func() { _ = http.Serve(dl, dmux) }()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-serve:", err)
		os.Exit(1)
	}
	if len(workerURLs) > 0 {
		fmt.Printf("swim-serve coordinating %d shard workers, listening on %s (%d concurrent jobs)\n",
			len(workerURLs), l.Addr(), *jobs)
	} else {
		fmt.Printf("swim-serve listening on %s (%d workers, %d concurrent jobs)\n",
			l.Addr(), total, *jobs)
	}
	if *portfile != "" {
		if err := os.WriteFile(*portfile, []byte(l.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "swim-serve:", err)
			os.Exit(1)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := s.Run(ctx, l); err != nil {
		fmt.Fprintln(os.Stderr, "swim-serve:", err)
		os.Exit(1)
	}
	fmt.Println("swim-serve drained cleanly")
}
