// Command swim-pareto traces the accuracy-vs-programming-energy Pareto
// frontier across programming policies: every (policy, NWC-target) cell of a
// Monte-Carlo sweep is costed through a hardware cost model (package cost),
// and the cells no other cell dominates — higher accuracy for no more
// programming energy — form the frontier. This is the question the cost tier
// exists to answer: how much accuracy each nanojoule of write-verify
// programming actually buys on a given device.
//
// Usage:
//
//	swim-pareto [-workload lenet|convnet|resnet|tiny]
//	            [-cost rram] [-nwcs 0,0.1,0.3]
//	            [-policies swim,magnitude,noverify]
//	            [-calib gainoffset|pertile[:probes=N]]
//	            [-sigma 1.0] [-trials N] [-workers N]
//	            [-json path] [-state dir]
//
// -cost selects the hardware cost model ("list" prints the registered
// presets; parameters attach as name:key=value). -calib enables the
// closed-loop calibration tier; its probe-read pass is priced through the
// cost model and added to every cell's programming energy, so the frontier
// becomes accuracy versus TOTAL energy — a calibrated cell must buy back
// its probe reads in accuracy to stay Pareto-optimal. -json additionally writes
// the costed sweep as a serialized result envelope — byte-identical to what
// the swim-serve daemon's result endpoint returns for the equivalent
// cost-bearing sweep request (CI diffs the two). -state restores/persists
// trained workload states so repeated runs skip training. Environment:
// SWIM_MC (trials), SWIM_EVAL (evaluation subset), SWIM_FAST (CI-scale
// workloads).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"swim/internal/calib"
	"swim/internal/cost"
	"swim/internal/experiments"
	"swim/internal/kernel"
	"swim/internal/mc"
	"swim/internal/program"
	"swim/internal/serialize"
	"swim/internal/stat"
)

func parseFloats(csv string) ([]float64, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// paretoPoint is one costed sweep cell flattened for frontier analysis.
type paretoPoint struct {
	policy   string
	target   float64
	acc      *stat.Welford
	energyUJ *stat.Welford
	timeMS   *stat.Welford
	frontier bool
}

// markFrontier marks the Pareto-optimal points: a point is dominated when
// another point reaches at least its mean accuracy for at most its mean
// programming energy, strictly better on one of the two.
func markFrontier(pts []paretoPoint) {
	for i := range pts {
		dominated := false
		for j := range pts {
			if i == j {
				continue
			}
			betterAcc := pts[j].acc.Mean() >= pts[i].acc.Mean()
			betterEnergy := pts[j].energyUJ.Mean() <= pts[i].energyUJ.Mean()
			strict := pts[j].acc.Mean() > pts[i].acc.Mean() || pts[j].energyUJ.Mean() < pts[i].energyUJ.Mean()
			if betterAcc && betterEnergy && strict {
				dominated = true
				break
			}
		}
		pts[i].frontier = !dominated
	}
}

func main() {
	workload := flag.String("workload", "lenet", "lenet | convnet | resnet | tiny")
	costFlag := flag.String("cost", "rram",
		"hardware cost model spec, e.g. rram or rram:write_pj=12,par=64 ('list' prints the registered presets)")
	nwcsFlag := flag.String("nwcs", "", "comma-separated NWC grid (default 0,0.1,0.3)")
	policiesFlag := flag.String("policies", "swim,magnitude,noverify",
		"comma-separated registry policies ('list' prints the registered names)")
	sigma := flag.Float64("sigma", experiments.SigmaHigh, "device variation before write-verify")
	jsonFlag := flag.String("json", "",
		"also write the costed sweep as a serialized result envelope to this path ('-' = stdout) — byte-identical to the swim-serve result endpoint")
	trials := flag.Int("trials", 0, "Monte-Carlo trials (0 = default / SWIM_MC)")
	workers := flag.Int("workers", 0, "Monte-Carlo worker goroutines (0 = SWIM_WORKERS or all CPUs)")
	kernelFlag := flag.String("kernel", "",
		"kernel backend for the eval plans' dense primitives (bit-identical to scalar; 'list' prints registered backends)")
	calibFlag := flag.String("calib", "",
		"calibration model fitting a digital read-out correction, e.g. gainoffset or pertile:probes=16; the probe pass is priced into the frontier ('list' prints registered models)")
	stateFlag := flag.String("state", "",
		"directory of serialized workload states: restore instead of retraining, persist after training (see swim-train -state)")
	flag.Parse()
	mc.SetWorkers(*workers)
	experiments.SetStateDir(*stateFlag)

	if *policiesFlag == "list" {
		fmt.Println(strings.Join(program.Names(), "\n"))
		return
	}
	fatal := func(code int, err error) {
		fmt.Fprintln(os.Stderr, "swim-pareto:", err)
		os.Exit(code)
	}
	model, ok, listing, err := cost.FromFlag(*costFlag)
	if err != nil {
		fatal(2, err)
	}
	if listing != "" {
		fmt.Println(listing)
		return
	}
	if !ok {
		fatal(2, fmt.Errorf("a cost model is required (-cost %q disables cost accounting; try -cost rram)", *costFlag))
	}
	kern, klisting, err := kernel.FromFlag(*kernelFlag)
	if err != nil {
		fatal(2, err)
	}
	if klisting != "" {
		fmt.Println(klisting)
		return
	}
	cm, cok, clisting, err := calib.FromFlag(*calibFlag)
	if err != nil {
		fatal(2, err)
	}
	if clisting != "" {
		fmt.Println(clisting)
		return
	}

	cfg := experiments.DefaultScenarioConfig()
	cfg.Times = []float64{0} // the frontier is a programming-time question
	cfg.Cost = model.Spec()
	if *kernelFlag != "" {
		cfg.Kernel = kern.Spec()
	}
	if cok {
		cfg.Calib = cm.Spec()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if ns, err := parseFloats(*nwcsFlag); err != nil {
		fatal(2, err)
	} else if ns != nil {
		cfg.NWCs = ns
	}
	policies, err := program.ResolveNames(*policiesFlag)
	if err != nil {
		fatal(2, err)
	}
	if policies != nil {
		cfg.Policies = policies
	}

	// With -json - the envelope owns stdout; route the human-readable
	// commentary to stderr so the JSON stays machine-parseable.
	human := io.Writer(os.Stdout)
	if *jsonFlag == "-" {
		human = os.Stderr
	}
	var w *experiments.Workload
	switch *workload {
	case "lenet":
		fmt.Fprintln(human, "training LeNet on the MNIST-like task (cached per process)...")
		w = experiments.LeNetMNIST()
	case "convnet":
		fmt.Fprintln(human, "training ConvNet on the CIFAR-like task...")
		w = experiments.ConvNetCIFAR()
	case "resnet":
		fmt.Fprintln(human, "training ResNet-18 on the CIFAR-like task...")
		w = experiments.ResNetCIFAR()
	case "tiny":
		fmt.Fprintln(human, "training ResNet-18 on the TinyImageNet-like task...")
		w = experiments.ResNetTiny()
	default:
		fatal(2, fmt.Errorf("unknown workload %q (want lenet, convnet, resnet or tiny)", *workload))
	}

	results, err := experiments.ScenarioResults(context.Background(), w, *sigma, nil, cfg)
	if err != nil {
		fatal(1, err)
	}

	var pts []paretoPoint
	rep := results[0].Result.Cost
	for _, sr := range results {
		if sr.Result.Cost == nil {
			fatal(1, fmt.Errorf("policy %s returned no cost report", sr.Policy))
		}
		// Calibration is a fixed per-programming-pass surcharge: shifting a
		// Welford aggregate by a constant is exact (same n and m2, mean + c),
		// so the frontier ranks total energy — programming plus probe pass —
		// without touching the per-trial aggregates.
		calibUJ := 0.0
		if cc := sr.Result.Cost.Calibration; cc != nil {
			calibUJ = cc.EnergyNJ * 1e-3
		}
		// Cost.Points and Points share the NWC-target grid index for index.
		for i, cp := range sr.Result.Cost.Points {
			energy := cp.EnergyUJ
			if calibUJ != 0 {
				energy = stat.FromMoments(energy.N(), energy.Mean()+calibUJ, energy.M2())
			}
			pts = append(pts, paretoPoint{
				policy: sr.Policy, target: cp.Target, acc: sr.Result.Points[i].Accuracy,
				energyUJ: energy, timeMS: cp.TimeMS,
			})
		}
	}
	markFrontier(pts)

	fmt.Fprintf(human, "\nAccuracy vs programming energy on %s (clean %.2f%%, sigma=%.2f, %d MC trials)\n",
		w.Name, w.CleanAcc, *sigma, cfg.Trials)
	fmt.Fprintf(human, "cost model: %s\n", rep.Model)
	fmt.Fprintf(human, "array: %d tiles (%d×%d), %.3f mm²; inference: %.1f nJ + %.2f µs per sample\n",
		rep.Geometry.Tiles, rep.Geometry.TileRows, rep.Geometry.TileCols,
		rep.AreaMM2, rep.InferenceEnergyNJ, rep.InferenceLatencyUS)
	if cc := rep.Calibration; cc != nil {
		fmt.Fprintf(human, "calibration: %s — %d probe MatVecs, %.1f nJ + %.2f µs per pass (added to every cell's energy)\n",
			cc.Model, cc.Ops.MatVecs, cc.EnergyNJ, cc.LatencyUS)
	}
	fmt.Fprintln(human)
	fmt.Fprintf(human, "%-10s %6s %16s %18s %14s  %s\n", "policy", "nwc", "accuracy (%)", "energy (µJ)", "time (ms)", "pareto")
	for _, p := range pts {
		mark := ""
		if p.frontier {
			mark = "*"
		}
		fmt.Fprintf(human, "%-10s %6.2f %8.2f ± %4.2f %10.2f ± %5.2f %8.2f ± %3.2f  %s\n",
			p.policy, p.target, p.acc.Mean(), p.acc.Std(),
			p.energyUJ.Mean(), p.energyUJ.Std(), p.timeMS.Mean(), p.timeMS.Std(), mark)
	}
	fmt.Fprintln(human, "\n* = Pareto-optimal: no cell reaches higher mean accuracy for less programming energy")

	if *jsonFlag != "" {
		out := os.Stdout
		if *jsonFlag != "-" {
			f, err := os.Create(*jsonFlag)
			if err != nil {
				fatal(1, err)
			}
			defer f.Close()
			out = f
		}
		env := &serialize.ResultEnvelope{Cells: experiments.EnvelopeCells(*workload, *sigma, results)}
		if err := serialize.EncodeEnvelope(out, env); err != nil {
			fatal(1, err)
		}
	}
}
