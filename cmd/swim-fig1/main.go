// Command swim-fig1 regenerates the paper's Fig. 1: the correlation between
// per-weight accuracy drop under perturbation and (a) weight magnitude —
// weak — versus (b) the second derivative — strong (paper quotes Pearson
// 0.83).
//
// Usage:
//
//	swim-fig1 [-weights N] [-repeats N] [-sigma S] [-policy swim]
//	          [-nonideal drift:nu=0.05] [-readtime 3600]
//
// -policy names the selector-backed registry policy whose ranking
// stratifies half the sampled weights across the sensitivity range.
// -nonideal maps each trial clone onto ideal devices degraded by the given
// scenario (read at -readtime seconds) before perturbing, probing whether
// the ranking survives realistic hardware.
package main

import (
	"flag"
	"fmt"
	"os"

	"swim/internal/experiments"
	"swim/internal/kernel"
	"swim/internal/mc"
	"swim/internal/nonideal"
)

func main() {
	cfg := experiments.DefaultFig1()
	flag.IntVar(&cfg.NumWeights, "weights", cfg.NumWeights, "weights to sample")
	flag.IntVar(&cfg.Repeats, "repeats", cfg.Repeats, "Monte-Carlo repeats per weight")
	flag.Float64Var(&cfg.SigmaPerturb, "sigma", cfg.SigmaPerturb, "perturbation std (weight LSB)")
	flag.IntVar(&cfg.EvalN, "eval", cfg.EvalN, "evaluation subset size")
	flag.IntVar(&cfg.EvalBatch, "batch", cfg.EvalBatch, "accuracy-measurement batch size")
	flag.StringVar(&cfg.Rank, "policy", cfg.Rank,
		"selector-backed registry policy whose ranking stratifies the weight sample")
	nonidealFlag := flag.String("nonideal", "",
		"'+'-stacked device-nonideality scenario applied at read time ('list' prints the registered models)")
	flag.Float64Var(&cfg.ReadTime, "readtime", 0, "read time in seconds after programming for -nonideal")
	workers := flag.Int("workers", 0, "Monte-Carlo worker goroutines (0 = SWIM_WORKERS or all CPUs)")
	kernelFlag := flag.String("kernel", "",
		"kernel backend for the per-clone compiled evaluators (bit-identical to scalar; 'list' prints registered backends)")
	stateFlag := flag.String("state", "",
		"directory of serialized workload states: restore instead of retraining, persist after training (see swim-train -state)")
	flag.Parse()
	mc.SetWorkers(*workers)
	experiments.SetStateDir(*stateFlag)

	scenario, listing, err := nonideal.FromFlag(*nonidealFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-fig1:", err)
		os.Exit(2)
	}
	if listing != "" {
		fmt.Println(listing)
		return
	}
	cfg.Nonideal = scenario
	kern, klisting, err := kernel.FromFlag(*kernelFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-fig1:", err)
		os.Exit(2)
	}
	if klisting != "" {
		fmt.Println(klisting)
		return
	}
	if *kernelFlag != "" {
		cfg.Kernel = kern.Spec()
	}

	w := experiments.LeNetMNIST()
	res, err := experiments.Fig1(w, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-fig1:", err)
		os.Exit(2)
	}
	experiments.PrintFig1(os.Stdout, w, cfg, res)
}
