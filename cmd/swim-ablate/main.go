// Command swim-ablate runs the design-choice ablations DESIGN.md indexes:
//
//	granularity — Algorithm 1 granule size p (paper fixes p = 5%)
//	tiebreak    — SWIM's magnitude tie-breaker on/off (paper §3.2)
//	kbits       — bits per device K (paper fixes K = 4, Eq. 15)
//	hessian     — analytic vs finite-difference second-derivative ranking
//	              (the Eq. 4→5 diagonal approximation)
//	spatial     — §2.1 spatial-variation extension
//	fisher      — Hessian-diagonal vs empirical-Fisher ranking
//
// -policy picks the registry policy the granularity/kbits/spatial ablations
// probe (default swim); tiebreak, hessian and fisher are SWIM-specific.
// -nonideal applies a '+'-stacked device-nonideality scenario (read at
// -readtime seconds) to every pipeline-backed ablation.
package main

import (
	"flag"
	"fmt"
	"os"

	"swim/internal/experiments"
	"swim/internal/kernel"
	"swim/internal/mc"
	"swim/internal/nonideal"
	"swim/internal/program"
)

func main() {
	what := flag.String("what", "granularity", "granularity | tiebreak | kbits | hessian | spatial | fisher | all")
	policy := flag.String("policy", "swim", "registry policy probed by the granularity/kbits/spatial ablations")
	nonidealFlag := flag.String("nonideal", "",
		"'+'-stacked device-nonideality scenario applied at read time ('list' prints the registered models)")
	readTime := flag.Float64("readtime", 0, "read time in seconds after programming for -nonideal")
	workers := flag.Int("workers", 0, "Monte-Carlo worker goroutines (0 = SWIM_WORKERS or all CPUs)")
	kernelFlag := flag.String("kernel", "",
		"kernel backend for the eval plans' dense primitives (bit-identical to scalar; 'list' prints registered backends)")
	stateFlag := flag.String("state", "",
		"directory of serialized workload states: restore instead of retraining, persist after training (see swim-train -state)")
	flag.Parse()
	mc.SetWorkers(*workers)
	experiments.SetStateDir(*stateFlag)

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "swim-ablate:", err)
		os.Exit(1)
	}
	scenario, listing, err := nonideal.FromFlag(*nonidealFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-ablate:", err)
		os.Exit(2)
	}
	if listing != "" {
		fmt.Println(listing)
		return
	}
	kern, klisting, err := kernel.FromFlag(*kernelFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-ablate:", err)
		os.Exit(2)
	}
	if klisting != "" {
		fmt.Println(klisting)
		return
	}
	scn := experiments.ReadScenario{Models: scenario, ReadTime: *readTime}
	if *kernelFlag != "" {
		scn.Kernel = kern
	}
	pol, err := program.Lookup(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-ablate:", err)
		os.Exit(2)
	}
	w := experiments.LeNetMNIST()
	trials := mc.Trials(5)
	run := map[string]func(){
		"granularity": func() {
			rows, err := experiments.AblateGranularity(w, pol, experiments.SigmaHigh, 1.0,
				[]float64{0.01, 0.05, 0.1, 0.25}, scn, trials, 40)
			if err != nil {
				fatal(err)
			}
			experiments.PrintGranularity(os.Stdout, w, 1.0, rows)
		},
		"tiebreak": func() {
			res, err := experiments.AblateTieBreak(w, experiments.SigmaHigh, 0.1, scn, trials, 41)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("Ablation: SWIM magnitude tie-breaker at NWC=%.1f (tied weights: %.1f%%)\n",
				res.NWC, 100*res.TiedFraction)
			fmt.Printf("  with tie-break    %s\n", res.WithTie)
			fmt.Printf("  without tie-break %s\n", res.WithoutTie)
		},
		"kbits": func() {
			rows, err := experiments.AblateDeviceBits(w, pol, experiments.SigmaTypical, 0.1,
				[]int{1, 2, 4}, scn, trials, 42)
			if err != nil {
				fatal(err)
			}
			experiments.PrintKBits(os.Stdout, w, pol.Name(), experiments.SigmaTypical, 0.1, rows)
		},
		"hessian": func() {
			rho := experiments.HessianQuality(w, 40, 43)
			fmt.Printf("Ablation: Eq. 4->5 diagonal approximation quality\n")
			fmt.Printf("  Spearman(analytic second derivative, finite difference) = %.3f\n", rho)
		},
		"spatial": func() {
			rows, err := experiments.AblateSpatial(w, pol, experiments.SigmaHigh, 0.1, scn, trials, 44)
			if err != nil {
				fatal(err)
			}
			experiments.PrintSpatial(os.Stdout, w, pol.Name(), 0.1, rows)
		},
		"fisher": func() {
			sw, fi, err := experiments.CompareFisher(w, experiments.SigmaHigh, 0.1, scn, trials, 45)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("Extension: ranking metric at NWC=0.1 (sigma=%.2f)\n", experiments.SigmaHigh)
			fmt.Printf("  SWIM (Hessian diagonal)     %s\n", sw)
			fmt.Printf("  empirical Fisher (grad^2)   %s\n", fi)
		},
	}
	if *what == "all" {
		for _, k := range []string{"granularity", "tiebreak", "kbits", "hessian", "spatial", "fisher"} {
			run[k]()
			fmt.Println()
		}
		return
	}
	f, ok := run[*what]
	if !ok {
		fmt.Fprintf(os.Stderr, "swim-ablate: unknown ablation %q\n", *what)
		os.Exit(2)
	}
	f()
}
