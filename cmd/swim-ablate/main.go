// Command swim-ablate runs the design-choice ablations DESIGN.md indexes:
//
//	granularity — Algorithm 1 granule size p (paper fixes p = 5%)
//	tiebreak    — SWIM's magnitude tie-breaker on/off (paper §3.2)
//	kbits       — bits per device K (paper fixes K = 4, Eq. 15)
//	hessian     — analytic vs finite-difference second-derivative ranking
//	              (the Eq. 4→5 diagonal approximation)
package main

import (
	"flag"
	"fmt"
	"os"

	"swim/internal/experiments"
	"swim/internal/mc"
)

func main() {
	what := flag.String("what", "granularity", "granularity | tiebreak | kbits | hessian | all")
	workers := flag.Int("workers", 0, "Monte-Carlo worker goroutines (0 = SWIM_WORKERS or all CPUs)")
	flag.Parse()
	mc.SetWorkers(*workers)

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "swim-ablate:", err)
		os.Exit(1)
	}
	w := experiments.LeNetMNIST()
	trials := mc.Trials(5)
	run := map[string]func(){
		"granularity": func() {
			rows, err := experiments.AblateGranularity(w, experiments.SigmaHigh, 1.0,
				[]float64{0.01, 0.05, 0.1, 0.25}, trials, 40)
			if err != nil {
				fatal(err)
			}
			experiments.PrintGranularity(os.Stdout, w, 1.0, rows)
		},
		"tiebreak": func() {
			res := experiments.AblateTieBreak(w, experiments.SigmaHigh, 0.1, trials, 41)
			fmt.Printf("Ablation: SWIM magnitude tie-breaker at NWC=%.1f (tied weights: %.1f%%)\n",
				res.NWC, 100*res.TiedFraction)
			fmt.Printf("  with tie-break    %s\n", res.WithTie)
			fmt.Printf("  without tie-break %s\n", res.WithoutTie)
		},
		"kbits": func() {
			rows := experiments.AblateDeviceBits(w, experiments.SigmaTypical, 0.1,
				[]int{1, 2, 4}, trials, 42)
			experiments.PrintKBits(os.Stdout, w, experiments.SigmaTypical, 0.1, rows)
		},
		"hessian": func() {
			rho := experiments.HessianQuality(w, 40, 43)
			fmt.Printf("Ablation: Eq. 4->5 diagonal approximation quality\n")
			fmt.Printf("  Spearman(analytic second derivative, finite difference) = %.3f\n", rho)
		},
		"spatial": func() {
			rows, err := experiments.AblateSpatial(w, experiments.SigmaHigh, 0.1, trials, 44)
			if err != nil {
				fatal(err)
			}
			experiments.PrintSpatial(os.Stdout, w, 0.1, rows)
		},
		"fisher": func() {
			sw, fi := experiments.CompareFisher(w, experiments.SigmaHigh, 0.1, trials, 45)
			fmt.Printf("Extension: ranking metric at NWC=0.1 (sigma=%.2f)\n", experiments.SigmaHigh)
			fmt.Printf("  SWIM (Hessian diagonal)     %s\n", sw)
			fmt.Printf("  empirical Fisher (grad^2)   %s\n", fi)
		},
	}
	if *what == "all" {
		for _, k := range []string{"granularity", "tiebreak", "kbits", "hessian", "spatial", "fisher"} {
			run[k]()
			fmt.Println()
		}
		return
	}
	f, ok := run[*what]
	if !ok {
		fmt.Fprintf(os.Stderr, "swim-ablate: unknown ablation %q\n", *what)
		os.Exit(2)
	}
	f()
}
