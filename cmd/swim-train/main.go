// Command swim-train trains one of the paper's models on its synthetic task,
// reports accuracy, and optionally saves/loads the learned state (gob state
// dictionary via internal/serialize) so downstream tools can skip training.
//
// Usage:
//
//	swim-train -model lenet|convnet|resnet18 [-epochs N] [-save path]
//	swim-train -model lenet -load path        # evaluate a saved state
//	swim-train -model lenet -state dir        # persist under the registry name
//	    # (lenet-mnist.state, ...) so swim-serve/-table1/... -state dir
//	    # restore instead of retraining
//	swim-train -model lenet -policy swim -nwc 0.1 -sigma 1.0
//	    # also measure on-device accuracy via the program pipeline
//
// With -policy, the trained model is programmed onto simulated devices and
// evaluated at the given write budget through the named registry policy; the
// pipeline computes sensitivities from a calibration split on its own.
// -nonideal degrades the devices with a '+'-stacked nonideality scenario
// read at -readtime seconds after programming.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/experiments"
	"swim/internal/mc"
	"swim/internal/models"
	"swim/internal/nn"
	"swim/internal/nonideal"
	"swim/internal/program"
	"swim/internal/rng"
	"swim/internal/serialize"
	"swim/internal/train"
)

func main() {
	model := flag.String("model", "lenet", "lenet | convnet | resnet18")
	epochs := flag.Int("epochs", 8, "training epochs")
	trainN := flag.Int("train", 2000, "training samples")
	testN := flag.Int("test", 800, "test samples")
	save := flag.String("save", "", "write trained state to this path")
	load := flag.String("load", "", "load state from this path instead of training")
	stateFlag := flag.String("state", "",
		"workload-registry state directory: save the trained state under the registry name so daemons/CLIs run with -state skip training")
	policy := flag.String("policy", "",
		"after training, evaluate on-device accuracy with this registry policy (empty = skip)")
	nwc := flag.Float64("nwc", 0.1, "write budget for the -policy evaluation (normalized write cycles)")
	sigma := flag.Float64("sigma", 1.0, "device variation for the -policy evaluation")
	trials := flag.Int("trials", 0, "Monte-Carlo trials for the -policy evaluation (0 = default / SWIM_MC)")
	nonidealFlag := flag.String("nonideal", "",
		"'+'-stacked device-nonideality scenario for the -policy evaluation ('list' prints the registered models)")
	readTime := flag.Float64("readtime", 0, "read time in seconds after programming for -nonideal")
	workers := flag.Int("workers", 0,
		"Monte-Carlo worker goroutines for downstream mc-based paths (0 = SWIM_WORKERS or all CPUs)")
	flag.Parse()
	mc.SetWorkers(*workers)

	scenario, listing, err := nonideal.FromFlag(*nonidealFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-train:", err)
		os.Exit(2)
	}
	if listing != "" {
		fmt.Println(listing)
		return
	}

	var (
		net          *nn.Network
		ds           *data.Dataset
		bits         int
		registryName string
	)
	r := rng.New(2)
	switch *model {
	case "lenet":
		ds = data.MNISTLike(*trainN, *testN, 1)
		net = models.LeNet(10, 4, r)
		bits, registryName = 4, "lenet-mnist"
	case "convnet":
		ds = data.CIFARLike(*trainN, *testN, 11)
		net = models.ConvNet(10, 8, 6, r)
		bits, registryName = 6, "convnet-cifar"
	case "resnet18":
		ds = data.CIFARLike(*trainN, *testN, 21)
		net = models.ResNet18(10, 8, 6, r)
		bits, registryName = 6, "resnet-cifar"
	default:
		fmt.Fprintf(os.Stderr, "swim-train: unknown model %q\n", *model)
		os.Exit(2)
	}

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swim-train:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := serialize.Load(f, net); err != nil {
			fmt.Fprintln(os.Stderr, "swim-train:", err)
			os.Exit(1)
		}
		fmt.Printf("loaded %s from %s\n", *model, *load)
	} else {
		cfg := train.DefaultConfig()
		cfg.Epochs = *epochs
		cfg.LRDecayEvery = *epochs / 2
		cfg.QATBits = bits
		cfg.Log = os.Stdout
		train.SGD(net, ds, cfg, r)
	}

	acc := train.Evaluate(net, ds.TestX, ds.TestY, 64)
	fmt.Printf("%s: test accuracy %.2f%% (%d mapped weights, %d-bit)\n",
		*model, acc, net.NumMappedWeights(), bits)

	if *policy != "" {
		pol, err := program.Lookup(*policy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swim-train:", err)
			os.Exit(2)
		}
		calX, calY := data.Subset(ds.TrainX, ds.TrainY, 512)
		opts := []program.Option{
			program.WithDevice(device.Default(bits, *sigma)),
			program.WithEval(ds.TestX, ds.TestY),
			program.WithCalibration(calX, calY),
			program.WithTraining(ds.TrainX, ds.TrainY),
			program.WithNonidealities(scenario...),
			program.WithReadTime(*readTime),
			program.WithSeed(1000),
		}
		if *trials > 0 {
			opts = append(opts, program.WithTrials(*trials))
		}
		p, err := program.New(net, pol, program.GridBudget(*nwc), opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swim-train:", err)
			os.Exit(1)
		}
		res, err := p.Run(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "swim-train:", err)
			os.Exit(1)
		}
		pt := res.Points[0]
		fmt.Printf("on-device accuracy via %s at NWC %.2f (sigma=%.2f, %d trials): %s\n",
			res.Policy, pt.Target, *sigma, res.Trials, pt.Accuracy)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swim-train:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := serialize.Save(f, net); err != nil {
			fmt.Fprintln(os.Stderr, "swim-train:", err)
			os.Exit(1)
		}
		fmt.Printf("state saved to %s\n", *save)
	}

	if *stateFlag != "" {
		experiments.SetStateDir(*stateFlag)
		if err := experiments.SaveState(registryName, net); err != nil {
			fmt.Fprintln(os.Stderr, "swim-train:", err)
			os.Exit(1)
		}
		fmt.Printf("workload state saved as %s/%s\n", *stateFlag, experiments.StateFile(registryName))
	}
}
