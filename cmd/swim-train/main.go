// Command swim-train trains one of the paper's models on its synthetic task,
// reports accuracy, and optionally saves/loads the learned state (gob state
// dictionary via internal/serialize) so downstream tools can skip training.
//
// Usage:
//
//	swim-train -model lenet|convnet|resnet18 [-epochs N] [-save path]
//	swim-train -model lenet -load path        # evaluate a saved state
package main

import (
	"flag"
	"fmt"
	"os"

	"swim/internal/data"
	"swim/internal/mc"
	"swim/internal/models"
	"swim/internal/nn"
	"swim/internal/rng"
	"swim/internal/serialize"
	"swim/internal/train"
)

func main() {
	model := flag.String("model", "lenet", "lenet | convnet | resnet18")
	epochs := flag.Int("epochs", 8, "training epochs")
	trainN := flag.Int("train", 2000, "training samples")
	testN := flag.Int("test", 800, "test samples")
	save := flag.String("save", "", "write trained state to this path")
	load := flag.String("load", "", "load state from this path instead of training")
	workers := flag.Int("workers", 0,
		"Monte-Carlo worker goroutines for downstream mc-based paths (0 = SWIM_WORKERS or all CPUs)")
	flag.Parse()
	mc.SetWorkers(*workers)

	var (
		net  *nn.Network
		ds   *data.Dataset
		bits int
	)
	r := rng.New(2)
	switch *model {
	case "lenet":
		ds = data.MNISTLike(*trainN, *testN, 1)
		net = models.LeNet(10, 4, r)
		bits = 4
	case "convnet":
		ds = data.CIFARLike(*trainN, *testN, 11)
		net = models.ConvNet(10, 8, 6, r)
		bits = 6
	case "resnet18":
		ds = data.CIFARLike(*trainN, *testN, 21)
		net = models.ResNet18(10, 8, 6, r)
		bits = 6
	default:
		fmt.Fprintf(os.Stderr, "swim-train: unknown model %q\n", *model)
		os.Exit(2)
	}

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swim-train:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := serialize.Load(f, net); err != nil {
			fmt.Fprintln(os.Stderr, "swim-train:", err)
			os.Exit(1)
		}
		fmt.Printf("loaded %s from %s\n", *model, *load)
	} else {
		cfg := train.DefaultConfig()
		cfg.Epochs = *epochs
		cfg.LRDecayEvery = *epochs / 2
		cfg.QATBits = bits
		cfg.Log = os.Stdout
		train.SGD(net, ds, cfg, r)
	}

	acc := train.Evaluate(net, ds.TestX, ds.TestY, 64)
	fmt.Printf("%s: test accuracy %.2f%% (%d mapped weights, %d-bit)\n",
		*model, acc, net.NumMappedWeights(), bits)

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swim-train:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := serialize.Save(f, net); err != nil {
			fmt.Fprintln(os.Stderr, "swim-train:", err)
			os.Exit(1)
		}
		fmt.Printf("state saved to %s\n", *save)
	}
}
