// Command swim-fig2 regenerates one panel of the paper's Fig. 2: accuracy
// versus normalized write cycles for the configured policies at the
// high-variation operating point.
//
// Usage:
//
//	swim-fig2 -panel a|b|c     (a: ConvNet/CIFAR, b: ResNet-18/CIFAR,
//	                            c: ResNet-18/TinyImageNet)
//	          [-policies swim,magnitude,random,insitu]
//	          [-nonideal drift:nu=0.05+stuckat:p=0.001] [-readtime 3600]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"swim/internal/calib"
	"swim/internal/experiments"
	"swim/internal/kernel"
	"swim/internal/mc"
	"swim/internal/nonideal"
	"swim/internal/program"
)

func main() {
	panel := flag.String("panel", "a", "figure panel: a, b or c")
	trials := flag.Int("trials", 0, "Monte-Carlo trials (0 = default / SWIM_MC)")
	workers := flag.Int("workers", 0, "Monte-Carlo worker goroutines (0 = SWIM_WORKERS or all CPUs)")
	sigma := flag.Float64("sigma", experiments.SigmaHigh,
		"device variation before write-verify (deeper models reach the paper's drop regime at lower sigma)")
	policiesFlag := flag.String("policies", "",
		"comma-separated programming policies from the registry (default swim,magnitude,random,insitu; 'list' prints the registered names)")
	nonidealFlag := flag.String("nonideal", "",
		"'+'-stacked device-nonideality scenario applied at read time ('list' prints the registered models)")
	readTime := flag.Float64("readtime", 0, "read time in seconds after programming for -nonideal")
	kernelFlag := flag.String("kernel", "",
		"kernel backend for the eval plans' dense primitives (bit-identical to scalar; 'list' prints registered backends)")
	calibFlag := flag.String("calib", "",
		"calibration model fitting a digital read-out correction, e.g. gainoffset or pertile:probes=16 ('list' prints registered models)")
	stateFlag := flag.String("state", "",
		"directory of serialized workload states: restore instead of retraining, persist after training (see swim-train -state)")
	flag.Parse()
	mc.SetWorkers(*workers)
	experiments.SetStateDir(*stateFlag)

	if *policiesFlag == "list" {
		fmt.Println(strings.Join(program.Names(), "\n"))
		return
	}
	scenario, listing, err := nonideal.FromFlag(*nonidealFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-fig2:", err)
		os.Exit(2)
	}
	if listing != "" {
		fmt.Println(listing)
		return
	}
	kern, klisting, err := kernel.FromFlag(*kernelFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-fig2:", err)
		os.Exit(2)
	}
	if klisting != "" {
		fmt.Println(klisting)
		return
	}
	cm, cok, clisting, err := calib.FromFlag(*calibFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-fig2:", err)
		os.Exit(2)
	}
	if clisting != "" {
		fmt.Println(clisting)
		return
	}
	cfg := experiments.DefaultSweep()
	cfg.Scenario = experiments.ReadScenario{Models: scenario, ReadTime: *readTime}
	if *kernelFlag != "" {
		cfg.Kernel = kern.Spec()
	}
	if cok {
		cfg.Calib = cm.Spec()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	policies, err := program.ResolveNames(*policiesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-fig2:", err)
		os.Exit(2)
	}
	cfg.Policies = policies

	var w *experiments.Workload
	switch *panel {
	case "a":
		fmt.Println("training ConvNet on the CIFAR-like task...")
		w = experiments.ConvNetCIFAR()
	case "b":
		fmt.Println("training ResNet-18 on the CIFAR-like task...")
		w = experiments.ResNetCIFAR()
	case "c":
		fmt.Println("training ResNet-18 on the TinyImageNet-like task...")
		w = experiments.ResNetTiny()
	default:
		fmt.Fprintf(os.Stderr, "swim-fig2: unknown panel %q (want a, b or c)\n", *panel)
		os.Exit(2)
	}
	res, err := experiments.Fig2At(w, *sigma, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swim-fig2:", err)
		os.Exit(1)
	}
	experiments.PrintFig2At(os.Stdout, w, *sigma, cfg, res)
}
