// Command swim-scenario sweeps programming policies against device-
// nonideality scenarios over time — the robustness-study axis the paper's
// Gaussian-noise-only evaluation leaves open. Each cell of the
// policy × scenario × read-time cross product is a full Monte-Carlo
// accuracy-vs-NWC sweep on a shared seed, so policies face common device
// instances.
//
// Usage:
//
//	swim-scenario [-workload lenet|convnet|resnet|tiny]
//	              [-nonideal "none;drift;drift:nu=0.05+stuckat:p=0.001"]
//	              [-times 0,3600,86400] [-nwcs 0,0.1,0.3]
//	              [-policies swim,magnitude,noverify]
//	              [-sigma 1.0] [-trials N] [-workers N]
//	              [-kernel scalar|blocked|parallel[:workers=N]]
//	              [-calib gainoffset|pertile[:probes=N]]
//	              [-json path] [-state dir]
//
// -json additionally writes the sweep as a serialized result envelope —
// byte-identical to what the swim-serve daemon's result endpoint returns
// for the equivalent request (CI diffs the two). -state restores/persists
// trained workload states so repeated runs skip training.
//
// Scenario grammar: scenarios separate with ';', models within a scenario
// stack with '+', parameters attach as name:key=value,key=value.
// "-nonideal list" prints the registered model names. Environment: SWIM_MC
// (trials), SWIM_EVAL (evaluation subset), SWIM_FAST (CI-scale workloads).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"swim/internal/calib"
	"swim/internal/experiments"
	"swim/internal/kernel"
	"swim/internal/mc"
	"swim/internal/nonideal"
	"swim/internal/program"
	"swim/internal/serialize"
)

func parseFloats(csv string) ([]float64, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	workload := flag.String("workload", "lenet", "lenet | convnet | resnet | tiny")
	nonidealFlag := flag.String("nonideal", "none;drift",
		"';'-separated nonideality scenarios, models stacked with '+' ('list' prints registered models)")
	timesFlag := flag.String("times", "", "comma-separated read times in seconds (default 0,3600,86400)")
	nwcsFlag := flag.String("nwcs", "", "comma-separated NWC grid (default 0,0.1,0.3)")
	policiesFlag := flag.String("policies", "",
		"comma-separated registry policies (default swim,magnitude,noverify; 'list' prints the registered names)")
	sigma := flag.Float64("sigma", experiments.SigmaHigh, "device variation before write-verify")
	jsonFlag := flag.String("json", "",
		"also write the sweep as a serialized result envelope to this path ('-' = stdout) — byte-identical to the swim-serve result endpoint")
	trials := flag.Int("trials", 0, "Monte-Carlo trials (0 = default / SWIM_MC)")
	workers := flag.Int("workers", 0, "Monte-Carlo worker goroutines (0 = SWIM_WORKERS or all CPUs)")
	kernelFlag := flag.String("kernel", "",
		"kernel backend for the eval plans' dense primitives (bit-identical to scalar; 'list' prints registered backends)")
	calibFlag := flag.String("calib", "",
		"calibration model fitting a digital read-out correction per cell, e.g. gainoffset or pertile:probes=16 ('list' prints registered models)")
	stateFlag := flag.String("state", "",
		"directory of serialized workload states: restore instead of retraining, persist after training (see swim-train -state)")
	flag.Parse()
	mc.SetWorkers(*workers)
	experiments.SetStateDir(*stateFlag)

	if *policiesFlag == "list" {
		fmt.Println(strings.Join(program.Names(), "\n"))
		return
	}
	// The -nonideal value here is a ';'-separated scenario LIST, not the
	// single stack nonideal.FromFlag parses, but the "list" convention must
	// match the other binaries' (whitespace-tolerant).
	if _, listing, _ := nonideal.FromFlag(*nonidealFlag); listing != "" {
		fmt.Println(listing)
		return
	}

	fatal := func(code int, err error) {
		fmt.Fprintln(os.Stderr, "swim-scenario:", err)
		os.Exit(code)
	}
	scenarios, err := experiments.ParseScenarios(*nonidealFlag)
	if err != nil {
		fatal(2, err)
	}
	cfg := experiments.DefaultScenarioConfig()
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if ts, err := parseFloats(*timesFlag); err != nil {
		fatal(2, err)
	} else if ts != nil {
		cfg.Times = ts
	}
	if ns, err := parseFloats(*nwcsFlag); err != nil {
		fatal(2, err)
	} else if ns != nil {
		cfg.NWCs = ns
	}
	policies, err := program.ResolveNames(*policiesFlag)
	if err != nil {
		fatal(2, err)
	}
	if policies != nil {
		cfg.Policies = policies
	}
	kern, listing, err := kernel.FromFlag(*kernelFlag)
	if err != nil {
		fatal(2, err)
	}
	if listing != "" {
		fmt.Println(listing)
		return
	}
	if *kernelFlag != "" {
		cfg.Kernel = kern.Spec()
	}
	cm, cok, clisting, err := calib.FromFlag(*calibFlag)
	if err != nil {
		fatal(2, err)
	}
	if clisting != "" {
		fmt.Println(clisting)
		return
	}
	if cok {
		cfg.Calib = cm.Spec()
	}

	// With -json - the envelope owns stdout; route the human-readable run
	// commentary to stderr so the JSON stays machine-parseable.
	human := io.Writer(os.Stdout)
	if *jsonFlag == "-" {
		human = os.Stderr
	}
	var w *experiments.Workload
	switch *workload {
	case "lenet":
		fmt.Fprintln(human, "training LeNet on the MNIST-like task (cached per process)...")
		w = experiments.LeNetMNIST()
	case "convnet":
		fmt.Fprintln(human, "training ConvNet on the CIFAR-like task...")
		w = experiments.ConvNetCIFAR()
	case "resnet":
		fmt.Fprintln(human, "training ResNet-18 on the CIFAR-like task...")
		w = experiments.ResNetCIFAR()
	case "tiny":
		fmt.Fprintln(human, "training ResNet-18 on the TinyImageNet-like task...")
		w = experiments.ResNetTiny()
	default:
		fatal(2, fmt.Errorf("unknown workload %q (want lenet, convnet, resnet or tiny)", *workload))
	}

	results, err := experiments.ScenarioResults(context.Background(), w, *sigma, scenarios, cfg)
	if err != nil {
		fatal(1, err)
	}
	experiments.PrintScenarioSweep(human, w, *sigma, cfg, experiments.SweepRows(results))

	if *jsonFlag != "" {
		out := os.Stdout
		if *jsonFlag != "-" {
			f, err := os.Create(*jsonFlag)
			if err != nil {
				fatal(1, err)
			}
			defer f.Close()
			out = f
		}
		env := &serialize.ResultEnvelope{Cells: experiments.EnvelopeCells(*workload, *sigma, results)}
		if err := serialize.EncodeEnvelope(out, env); err != nil {
			fatal(1, err)
		}
	}
}
