module swim

go 1.24
