// Package swim_bench is the benchmark harness that regenerates every table
// and figure of the paper's evaluation (one benchmark per artifact — see
// DESIGN.md §4 for the index) plus the microbenchmarks backing the paper's
// cost claims. Each experiment benchmark prints the regenerated rows/series
// once, so `go test -bench=. -benchmem` doubles as the reproduction run.
//
// Allocation benchmarks: the BenchmarkEvalPlan* family measures the compiled
// evaluation engine (internal/eval) with -benchmem and must report 0
// allocs/op in steady state — CI's allocation-regression step parses the
// benchmark output and fails the build if the plan path ever allocates. The
// BenchmarkEvalLegacy* twins keep the allocating per-layer Forward path
// measured for comparison (the before/after numbers are recorded in
// EXPERIMENTS.md), and BenchmarkEvalParallel tracks plan-based evaluation
// under concurrent per-worker evaluators at 1 and NumCPU workers.
//
// Scale: by default the harness forces SWIM_FAST workloads so the whole
// suite completes on a laptop core in minutes. Set SWIM_FULL=1 (and
// optionally SWIM_MC) to run the paper-scale workloads used for
// EXPERIMENTS.md; the cmd/ binaries do the same with more control.
package swim_bench

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/eval"
	"swim/internal/experiments"
	"swim/internal/kernel"
	"swim/internal/mapping"
	"swim/internal/mc"
	"swim/internal/models"
	"swim/internal/nn"
	"swim/internal/obs"
	"swim/internal/program"
	"swim/internal/rng"
	"swim/internal/tensor"
)

func TestMain(m *testing.M) {
	if os.Getenv("SWIM_FULL") == "" && os.Getenv("SWIM_FAST") == "" {
		os.Setenv("SWIM_FAST", "1")
	}
	os.Exit(m.Run())
}

var printOnce sync.Map

func printSeries(key string, f func()) {
	if _, done := printOnce.LoadOrStore(key, true); !done {
		f()
	}
}

// swimPolicy resolves the paper's policy from the program registry.
func swimPolicy(b *testing.B) program.Policy {
	b.Helper()
	pol, err := program.Lookup("swim")
	if err != nil {
		b.Fatal(err)
	}
	return pol
}

// --- experiment benchmarks: one per paper artifact -------------------------

// BenchmarkTable1 regenerates Table 1 (LeNet/MNIST: accuracy vs NWC for all
// four methods across the σ grid).
func BenchmarkTable1(b *testing.B) {
	w := experiments.LeNetMNIST()
	cfg := experiments.DefaultSweep()
	sigmas := experiments.SigmaGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(w, sigmas, cfg)
		if err != nil {
			b.Fatal(err)
		}
		printSeries("table1", func() {
			experiments.PrintTable1(os.Stdout, w, sigmas, cfg, res)
			sw := res[experiments.SigmaTypical]["swim"]
			for _, m := range []string{"magnitude", "random", "insitu"} {
				s := experiments.SpeedupAt(sw, res[experiments.SigmaTypical][m], cfg.NWCs, 0.1)
				fmt.Printf("speedup vs %-10s at NWC=0.1: %.0fx\n", m, s)
			}
		})
	}
}

// BenchmarkFig1Correlation regenerates Fig. 1a/1b (accuracy drop vs weight
// magnitude and vs second derivative).
func BenchmarkFig1Correlation(b *testing.B) {
	w := experiments.LeNetMNIST()
	cfg := experiments.DefaultFig1()
	if os.Getenv("SWIM_FULL") == "" {
		cfg.NumWeights, cfg.Repeats, cfg.EvalN = 30, 3, 150
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		printSeries("fig1", func() {
			fmt.Printf("Fig1: Pearson(|w|, drop) = %+.3f  Pearson(d2f/dw2, drop) = %+.3f  Spearman = %+.3f\n",
				res.PearsonMagnitude, res.PearsonHess, res.SpearmanHess)
		})
	}
}

func benchFig2(b *testing.B, key string, w *experiments.Workload) {
	cfg := experiments.DefaultSweep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		printSeries(key, func() { experiments.PrintFig2(os.Stdout, w, cfg, res) })
	}
}

// BenchmarkFig2ConvNet regenerates Fig. 2a (ConvNet / CIFAR-10).
func BenchmarkFig2ConvNet(b *testing.B) { benchFig2(b, "fig2a", experiments.ConvNetCIFAR()) }

// BenchmarkFig2ResNetCIFAR regenerates Fig. 2b (ResNet-18 / CIFAR-10).
func BenchmarkFig2ResNetCIFAR(b *testing.B) { benchFig2(b, "fig2b", experiments.ResNetCIFAR()) }

// BenchmarkFig2ResNetTiny regenerates Fig. 2c (ResNet-18 / Tiny ImageNet).
func BenchmarkFig2ResNetTiny(b *testing.B) { benchFig2(b, "fig2c", experiments.ResNetTiny()) }

// BenchmarkDeviceCalibration reproduces the §4.1 anchors (~10 write cycles
// per weight, post-write-verify residual σ ≈ 0.03).
func BenchmarkDeviceCalibration(b *testing.B) {
	m := device.Default(4, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := m.Calibrate(20000, rng.New(uint64(i+1)))
		printSeries("cal", func() {
			fmt.Printf("calibration: %.2f cycles/weight, residual sigma %.4f (paper: ~10, ~0.03)\n",
				s.MeanCycles, s.ResidualStd)
		})
	}
}

// --- ablation benchmarks (abl-p, abl-tie, abl-k, abl-approx) ----------------

func BenchmarkAblateGranularity(b *testing.B) {
	w := experiments.LeNetMNIST()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblateGranularity(w, swimPolicy(b), experiments.SigmaHigh, 1.0, []float64{0.05, 0.25}, experiments.ReadScenario{}, 3, 40)
		if err != nil {
			b.Fatal(err)
		}
		printSeries("abl-p", func() { experiments.PrintGranularity(os.Stdout, w, 1.0, rows) })
	}
}

func BenchmarkAblateTieBreak(b *testing.B) {
	w := experiments.LeNetMNIST()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblateTieBreak(w, experiments.SigmaHigh, 0.1, experiments.ReadScenario{}, 3, 41)
		if err != nil {
			b.Fatal(err)
		}
		printSeries("abl-tie", func() {
			fmt.Printf("tie-break ablation: with %s / without %s (%.1f%% tied)\n",
				res.WithTie, res.WithoutTie, 100*res.TiedFraction)
		})
	}
}

func BenchmarkAblateDeviceBits(b *testing.B) {
	w := experiments.LeNetMNIST()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblateDeviceBits(w, swimPolicy(b), experiments.SigmaTypical, 0.1, []int{2, 4}, experiments.ReadScenario{}, 3, 42)
		if err != nil {
			b.Fatal(err)
		}
		printSeries("abl-k", func() {
			experiments.PrintKBits(os.Stdout, w, "swim", experiments.SigmaTypical, 0.1, rows)
		})
	}
}

func BenchmarkHessianQuality(b *testing.B) {
	w := experiments.LeNetMNIST()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rho := experiments.HessianQuality(w, 10, 43)
		printSeries("abl-approx", func() {
			fmt.Printf("diagonal-approximation ablation: Spearman(analytic, FD) = %.3f\n", rho)
		})
	}
}

// --- Monte-Carlo engine microbenchmarks -------------------------------------
//
// BenchmarkMCRun and BenchmarkMCRunSeries track the parallel engine's
// speedup over its serial path (workers=1) at 1/2/4/8 workers. The trial body
// mirrors a real Monte-Carlo trial in miniature — a few thousand deterministic
// RNG draws — so the numbers isolate engine scheduling from workload noise.
// On a 4-core runner workers=4 is expected to be ≥ 2× workers=1; on fewer
// cores the extra worker counts simply converge to the core count.

func mcTrialWork(r *rng.Source) float64 {
	s := 0.0
	for i := 0; i < 4000; i++ {
		s += r.Norm()
	}
	return s / 4000
}

func BenchmarkMCRun(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mc.RunCtx(context.Background(), 1, 256, workers, mcTrialWork); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMCRunSeries(b *testing.B) {
	trial := func(r *rng.Source) []float64 {
		return []float64{mcTrialWork(r), mcTrialWork(r), mcTrialWork(r), mcTrialWork(r)}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mc.RunSeriesCtx(context.Background(), 1, 64, 4, workers, trial); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMCSweepWorkers tracks the speedup on the real hot path: a full
// device-programming sweep (the unit behind every Table 1 / Fig. 2 number)
// at 1 and NumCPU workers.
func BenchmarkMCSweepWorkers(b *testing.B) {
	w := experiments.LeNetMNIST()
	cfg := experiments.SweepConfig{NWCs: []float64{0, 0.5}, Trials: 8, Seed: 77}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			mc.SetWorkers(workers)
			defer mc.SetWorkers(0)
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Sweep(w, experiments.SigmaHigh, "swim", cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- microbenchmarks backing the paper's cost claims ------------------------

// BenchmarkGradientPass and BenchmarkHessianPass substantiate §3.3's claim
// that the second-derivative pass "takes approximately the same amount of
// time and memory as conventional gradient computation".
func BenchmarkGradientPass(b *testing.B) {
	net := models.LeNet(10, 4, rng.New(1))
	x, y := lenetBatch(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrad()
		net.LossGrad(x, y, false)
	}
}

func BenchmarkHessianPass(b *testing.B) {
	net := models.LeNet(10, 4, rng.New(1))
	x, y := lenetBatch(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroHess()
		net.AccumulateHessian(x, y)
	}
}

// BenchmarkForwardLeNet measures plain inference (the unit of every accuracy
// evaluation in the Monte-Carlo harness).
func BenchmarkForwardLeNet(b *testing.B) {
	net := models.LeNet(10, 4, rng.New(1))
	x, _ := lenetBatch(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

// --- compiled evaluation engine: plan vs legacy Forward ---------------------
//
// BenchmarkEvalPlan* runs full-dataset accuracy through the compiled
// zero-allocation engine (internal/eval); the allocation-regression CI step
// pins its steady state at 0 allocs/op. BenchmarkEvalLegacy* is the same
// workload on the allocating per-layer Forward path, kept for comparison.

// obsPlanObserver mirrors the serving daemon's metrics wiring: per-backend
// compiled-plan latency observed into an obs histogram vector.
type obsPlanObserver struct{ vec *obs.HistogramVec }

func (o *obsPlanObserver) ObservePlan(backend string, seconds float64) {
	o.vec.With(backend).Observe(seconds)
}

// instrumentEvalPlan installs an obs-backed plan observer for the duration of
// one benchmark, so the BenchmarkEvalPlan* family measures the hot path the
// way swim-serve actually runs it — observability on. The 0 allocs/op CI gate
// therefore also pins the instrumentation itself (warm-up before the timed
// loop creates each backend's child histogram; steady-state observation must
// never allocate).
func instrumentEvalPlan(b *testing.B) {
	b.Helper()
	reg := obs.NewRegistry()
	eval.SetPlanObserver(&obsPlanObserver{
		vec: reg.HistogramVec("bench_eval_plan_seconds", "compiled-plan batch seconds by backend", "backend", nil),
	})
	b.Cleanup(func() { eval.SetPlanObserver(nil) })
}

// evalWorkload builds a (network, eval set) pair for the eval benchmarks.
func evalWorkload(model string) (*nn.Network, *tensor.Tensor, []int) {
	switch model {
	case "lenet":
		ds := data.MNISTLike(64, 64, 42)
		return models.LeNet(10, 4, rng.New(1)), ds.TrainX, ds.TrainY
	case "resnet":
		ds := data.CIFARLike(64, 64, 42)
		return models.ResNet18(10, 4, 6, rng.New(1)), ds.TrainX, ds.TrainY
	}
	panic("unknown eval workload " + model)
}

func benchEvalPlan(b *testing.B, model string) {
	instrumentEvalPlan(b)
	net, x, y := evalWorkload(model)
	ev := eval.NewEvaluator(net, nil)
	if _, err := ev.Accuracy(x, y, 32); err != nil { // compile + warm up plans
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Accuracy(x, y, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEvalLegacy(b *testing.B, model string) {
	net, x, y := evalWorkload(model)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bt := range data.Batches(x, y, 32) {
			net.CountCorrect(bt.X, bt.Y)
		}
	}
}

func BenchmarkEvalPlanLeNet(b *testing.B)  { benchEvalPlan(b, "lenet") }
func BenchmarkEvalPlanResNet(b *testing.B) { benchEvalPlan(b, "resnet") }

// BenchmarkEvalPlanKernels measures the same full-dataset plan evaluation
// under every registered kernel backend (internal/kernel): scalar is the
// bit-identical baseline, blocked re-tiles the matmuls for cache locality on
// one core, and parallel fans batch rows across the shared worker pool. The
// sub-benchmark names feed scripts/bench_kernels.sh, which gates the
// blocked-vs-scalar speedup in CI, and the BenchmarkEvalPlan prefix keeps
// every backend under the 0 allocs/op gate.
func BenchmarkEvalPlanKernels(b *testing.B) {
	instrumentEvalPlan(b)
	for _, model := range []string{"lenet", "resnet"} {
		net, x, y := evalWorkload(model)
		for _, spec := range []string{"scalar", "blocked", "parallel"} {
			k, err := kernel.Parse(spec)
			if err != nil {
				b.Fatal(err)
			}
			ev := eval.NewEvaluatorKernel(net, nil, k)
			if _, err := ev.Accuracy(x, y, 32); err != nil { // compile + warm up plans
				b.Fatal(err)
			}
			b.Run(model+"/"+spec, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := ev.Accuracy(x, y, 32); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// costAccountingSink keeps the cost-accounting reads observable so the
// compiler cannot elide them from BenchmarkEvalPlanCostAccounting.
var costAccountingSink float64

// BenchmarkEvalPlanCostAccounting measures the eval hot path exactly as the
// cost tier drives it: a device-programmed mapping evaluated through the
// compiled plan with the write-cycle aggregates (CyclesUsed, NWC) read back
// each iteration — the same reads gridTrial performs per trial to feed
// cost.Report. It shares the BenchmarkEvalPlan* 0 allocs/op CI gate: cost
// accounting must never put allocations back on the hot path.
func BenchmarkEvalPlanCostAccounting(b *testing.B) {
	instrumentEvalPlan(b)
	ds := data.MNISTLike(64, 64, 42)
	net := models.LeNet(10, 4, rng.New(1))
	dm := device.Default(4, 0.5)
	table := dm.CycleTable(50, rng.New(2))
	mp, err := mapping.New(net, dm, table, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	mp.SetEvalArena(tensor.NewArena())
	mp.Accuracy(ds.TrainX, ds.TrainY, 32) // compile + warm up the plan
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		costAccountingSink = mp.Accuracy(ds.TrainX, ds.TrainY, 32) + mp.CyclesUsed + mp.NWC()
	}
}
func BenchmarkEvalLegacyLeNet(b *testing.B)  { benchEvalLegacy(b, "lenet") }
func BenchmarkEvalLegacyResNet(b *testing.B) { benchEvalLegacy(b, "resnet") }

// BenchmarkEvalParallel measures plan-based evaluation under the pipeline's
// concurrency model: W workers, each owning one network clone, one evaluator
// and one scratch arena (plans are not goroutine-safe; arenas are
// per-worker). Compare workers=1 against workers=NumCPU for scaling, and
// against BenchmarkEvalLegacy* for the allocation win under contention —
// the legacy path's per-Forward garbage serializes workers in the GC.
func BenchmarkEvalParallel(b *testing.B) {
	workerCounts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, model := range []string{"lenet", "resnet"} {
		master, x, y := evalWorkload(model)
		for _, workers := range workerCounts {
			evs := make([]*eval.Evaluator, workers)
			for w := range evs {
				evs[w] = eval.NewEvaluator(master.Clone(), nil)
				if _, err := evs[w].Accuracy(x, y, 32); err != nil {
					b.Fatal(err)
				}
			}
			b.Run(fmt.Sprintf("%s/workers=%d", model, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for w := 0; w < workers; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							if _, err := evs[w].Accuracy(x, y, 32); err != nil {
								panic(err)
							}
						}(w)
					}
					wg.Wait()
				}
			})
		}
	}
}

// BenchmarkWriteVerifyWeight measures the per-weight write-verify simulation.
func BenchmarkWriteVerifyWeight(b *testing.B) {
	m := device.Default(4, 0.1)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.WriteVerify(i&15, r)
	}
}

// BenchmarkMapNetwork measures programming a full LeNet onto devices.
func BenchmarkMapNetwork(b *testing.B) {
	net := models.LeNet(10, 4, rng.New(1))
	dm := device.Default(4, 0.5)
	table := dm.CycleTable(50, rng.New(2))
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapping.New(net, dm, table, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatMul measures the core kernel (256x256x256).
func BenchmarkMatMul(b *testing.B) {
	r := rng.New(1)
	a := tensor.New(256, 256)
	c := tensor.New(256, 256)
	out := tensor.New(256, 256)
	for i := range a.Data {
		a.Data[i] = r.Gauss(0, 1)
		c.Data[i] = r.Gauss(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, a, c, false)
	}
	b.SetBytes(int64(8 * 256 * 256))
}

func lenetBatch(n int) (*tensor.Tensor, []int) {
	ds := data.MNISTLike(n, n, 42)
	return ds.TrainX, ds.TrainY
}
