#!/bin/sh
# Coverage floor: the module's aggregate statement coverage must not fall
# below COVER_FLOOR (percent). Measured with the fast test profile
# (SWIM_FAST/SWIM_MC) so the gate stays cheap; the full suite runs in the
# separate race step.
#
#   COVER_FLOOR=70 ./scripts/coverage_floor.sh
#
# Recorded baseline: 73.1% total at the floor's introduction (PR 9).
set -eu

COVER_FLOOR="${COVER_FLOOR:-70}"
profile="$(mktemp)"
trap 'rm -f "$profile"' EXIT

SWIM_FAST="${SWIM_FAST:-1}" SWIM_MC="${SWIM_MC:-3}" \
    go test -coverprofile="$profile" ./...

total="$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')"
echo "total statement coverage: ${total}% (floor: ${COVER_FLOOR}%)"
ok="$(awk -v t="$total" -v f="$COVER_FLOOR" 'BEGIN {print (t+0 >= f+0) ? 1 : 0}')"
if [ "$ok" != 1 ]; then
    echo "coverage ${total}% fell below the ${COVER_FLOOR}% floor" >&2
    exit 1
fi
