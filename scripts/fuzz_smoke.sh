#!/bin/sh
# Fuzz smoke: run every Fuzz* target in the module for a short burst of
# coverage-guided input generation (committed seed corpora under each
# package's testdata/fuzz/ are always included). `go test -fuzz` accepts
# only one target per invocation, so this walks packages and targets.
#
#   FUZZTIME=10s ./scripts/fuzz_smoke.sh
#
# Any crasher the burst finds is written to the package's testdata/fuzz/
# directory by the Go tooling and fails the run.
set -eu

FUZZTIME="${FUZZTIME:-10s}"

fail=0
for pkg in $(go list ./...); do
    targets=$(go test "$pkg" -list '^Fuzz' 2>/dev/null | grep '^Fuzz' || true)
    [ -z "$targets" ] && continue
    for tgt in $targets; do
        echo "fuzzing $pkg $tgt ($FUZZTIME)"
        if ! go test "$pkg" -run '^$' -fuzz "^${tgt}\$" -fuzztime "$FUZZTIME"; then
            echo "FUZZ FAILURE: $pkg $tgt" >&2
            fail=1
        fi
    done
done
exit "$fail"
