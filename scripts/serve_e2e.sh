#!/usr/bin/env bash
# End-to-end smoke test for the serving tier: boot swim-serve on an
# ephemeral port, submit a small scenario request over HTTP, and diff the
# JSON result against the equivalent swim-scenario CLI invocation — the
# bit-identical-serving contract (same seeds, same workload recipe, any
# worker split).
#
# Both processes train the same workload from the same seeds (or restore it
# from the shared -state directory), so the only moving part is the serving
# path itself. Keep the request here and the CLI flags in lockstep.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
server_pid=""
trap '[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

# CI-scale knobs; export the same environment to both processes.
export SWIM_FAST=1 SWIM_MC=3 SWIM_EVAL=64

echo "=== building binaries"
go build -o "$workdir/swim-serve" ./cmd/swim-serve
go build -o "$workdir/swim-scenario" ./cmd/swim-scenario

echo "=== swim-scenario reference run"
"$workdir/swim-scenario" -workload lenet -state "$workdir/state" \
  -nonideal "none;stuckat:p=0.02" -times 0,3600 -nwcs 0,0.1 \
  -policies swim,noverify -trials 3 -json "$workdir/cli.json" >/dev/null

echo "=== booting swim-serve"
"$workdir/swim-serve" -addr 127.0.0.1:0 -state "$workdir/state" \
  -portfile "$workdir/port" -jobs 2 &
server_pid=$!
for _ in $(seq 1 100); do
  [ -s "$workdir/port" ] && break
  sleep 0.1
done
addr="$(cat "$workdir/port")"
curl -sf "http://$addr/healthz" >/dev/null

echo "=== submitting scenario request to $addr"
job_id="$(curl -sf -XPOST "http://$addr/v1/jobs" -d '{
  "kind": "scenario",
  "workload": "lenet",
  "scenarios": "none;stuckat:p=0.02",
  "times": [0, 3600],
  "nwcs": [0, 0.1],
  "policies": ["swim", "noverify"],
  "trials": 3,
  "seed": 4000
}' | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')"
test -n "$job_id"

echo "=== waiting for $job_id"
status="$(curl -sf "http://$addr/v1/jobs/$job_id?wait=1" \
  | sed -n 's/.*"status": "\([^"]*\)".*/\1/p')"
if [ "$status" != "done" ]; then
  echo "job finished with status '$status'" >&2
  curl -s "http://$addr/v1/jobs/$job_id" >&2
  exit 1
fi
curl -sf "http://$addr/v1/jobs/$job_id/result" >"$workdir/http.json"

echo "=== diffing HTTP result against the CLI output"
diff -u "$workdir/cli.json" "$workdir/http.json"

echo "=== resubmitting: must be served from cache"
cached="$(curl -sf -XPOST "http://$addr/v1/jobs" -d '{
  "kind": "scenario",
  "workload": "lenet",
  "scenarios": "none;stuckat:p=0.02",
  "times": [0, 3600],
  "nwcs": [0, 0.1],
  "policies": ["swim", "noverify"],
  "trials": 3,
  "seed": 4000
}' | sed -n 's/.*"cached": \(true\).*/\1/p')"
if [ "$cached" != "true" ]; then
  echo "repeat request was not served from cache" >&2
  exit 1
fi

echo "=== graceful drain on SIGTERM"
kill -TERM "$server_pid"
wait "$server_pid"

echo "serve e2e smoke: OK (result bit-identical to CLI, cache hit, clean drain)"
