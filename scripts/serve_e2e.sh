#!/usr/bin/env bash
# End-to-end smoke test for the serving tier, in three parts:
#
#   A. Single daemon: boot swim-serve on an ephemeral port, submit a small
#      scenario request over HTTP, and diff the JSON result against the
#      equivalent swim-scenario CLI invocation — the bit-identical-serving
#      contract (same seeds, same workload recipe, any worker split).
#   B. Distributed topology: boot two shard workers plus a coordinator
#      pointed at them, submit the same request, and diff the merged
#      envelope against the same CLI output — sharding must not change a
#      single byte.
#   C. Resilience: submit a longer job to the coordinator and kill -9 one
#      worker mid-job; the coordinator must reassign its shards to the
#      survivor and still produce the CLI-identical envelope.
#   D. Cost tier: diff swim-pareto -json (the costed sweep envelope) against
#      the daemon's answer for the equivalent cost-bearing sweep request —
#      the cost axis must serve byte-identically too — and probe the
#      /v1/metrics snapshot for the operational counters.
#   E. Observability: stream a sharded job's SSE events from the
#      coordinator (trials_done must advance monotonically to a terminal
#      done event, and a post-completion subscription must replay the sealed
#      log), then scrape /v1/metrics in the Prometheus text format and check
#      the shard-latency histogram recorded the dispatches.
#
# All processes train the same workload from the same seeds (or restore it
# from the shared -state directory), so the only moving part is the serving
# path itself. Keep the requests here and the CLI flags in lockstep.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
pids=""
trap 'for p in $pids; do kill -9 "$p" 2>/dev/null || true; done; rm -rf "$workdir"' EXIT

# CI-scale knobs; export the same environment to every process.
export SWIM_FAST=1 SWIM_MC=3 SWIM_EVAL=64

# boot_serve <portfile> <args...>: start a daemon, wait for its port, and
# print "pid addr". The daemon's own output goes to <portfile>.log — it
# must NOT share this function's stdout, which the caller reads from.
boot_serve() {
  local portfile="$1"; shift
  "$workdir/swim-serve" -addr 127.0.0.1:0 -portfile "$portfile" "$@" \
    >"$portfile.log" 2>&1 &
  local pid=$!
  for _ in $(seq 1 300); do
    [ -s "$portfile" ] && break
    sleep 0.1
  done
  if [ ! -s "$portfile" ]; then
    echo "swim-serve never wrote $portfile:" >&2
    cat "$portfile.log" >&2
    return 1
  fi
  echo "$pid $(cat "$portfile")"
}

# submit_job <addr> <json>: POST a request and print the job id.
submit_job() {
  curl -sf -XPOST "http://$1/v1/jobs" -d "$2" \
    | sed -n 's/.*"id": "\([^"]*\)".*/\1/p'
}

# await_exit <pid...>: wait for processes that are not children of this
# shell (boot_serve starts them from a process substitution).
await_exit() {
  local pid
  for pid in "$@"; do
    for _ in $(seq 1 300); do
      kill -0 "$pid" 2>/dev/null || break
      sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
      echo "process $pid did not exit" >&2
      return 1
    fi
  done
}

# await_job <addr> <job_id>: long-poll until terminal; fail unless done.
await_job() {
  local status
  status="$(curl -sf "http://$1/v1/jobs/$2?wait=1" \
    | sed -n 's/.*"status": "\([^"]*\)".*/\1/p')"
  if [ "$status" != "done" ]; then
    echo "job $2 finished with status '$status'" >&2
    curl -s "http://$1/v1/jobs/$2" >&2
    return 1
  fi
}

echo "=== building binaries"
go build -o "$workdir/swim-serve" ./cmd/swim-serve
go build -o "$workdir/swim-scenario" ./cmd/swim-scenario
go build -o "$workdir/swim-pareto" ./cmd/swim-pareto

echo "=== swim-scenario reference run"
"$workdir/swim-scenario" -workload lenet -state "$workdir/state" \
  -nonideal "none;stuckat:p=0.02" -times 0,3600 -nwcs 0,0.1 \
  -policies swim,noverify -trials 3 -json "$workdir/cli.json" >/dev/null

request='{
  "kind": "scenario",
  "workload": "lenet",
  "scenarios": "none;stuckat:p=0.02",
  "times": [0, 3600],
  "nwcs": [0, 0.1],
  "policies": ["swim", "noverify"],
  "trials": 3,
  "seed": 4000
}'

echo "=== part A: single daemon ==="
echo "=== booting swim-serve"
read -r server_pid addr < <(boot_serve "$workdir/port" -state "$workdir/state" -jobs 2)
pids="$server_pid"
curl -sf "http://$addr/healthz" >/dev/null

echo "=== submitting scenario request to $addr"
job_id="$(submit_job "$addr" "$request")"
test -n "$job_id"

echo "=== waiting for $job_id"
await_job "$addr" "$job_id"
curl -sf "http://$addr/v1/jobs/$job_id/result" >"$workdir/http.json"

echo "=== diffing HTTP result against the CLI output"
diff -u "$workdir/cli.json" "$workdir/http.json"

echo "=== resubmitting: must be served from cache"
cached="$(curl -sf -XPOST "http://$addr/v1/jobs" -d "$request" \
  | sed -n 's/.*"cached": \(true\).*/\1/p')"
if [ "$cached" != "true" ]; then
  echo "repeat request was not served from cache" >&2
  exit 1
fi

echo "=== error envelope: unknown route must carry a typed code"
curl -s "http://$addr/v1/nope" | grep -q '"code": "not_found"'

echo "=== part D: cost tier — swim-pareto vs served cost cells ==="
"$workdir/swim-pareto" -workload lenet -state "$workdir/state" \
  -cost rram -nwcs 0,0.1 -policies swim,magnitude,noverify -trials 3 \
  -json "$workdir/pareto.json" >/dev/null

cost_request='{
  "kind": "sweep",
  "workload": "lenet",
  "nwcs": [0, 0.1],
  "policies": ["swim", "magnitude", "noverify"],
  "times": [0],
  "trials": 3,
  "seed": 4000,
  "cost": "rram"
}'
job_id="$(submit_job "$addr" "$cost_request")"
test -n "$job_id"
await_job "$addr" "$job_id"
curl -sf "http://$addr/v1/jobs/$job_id/result" >"$workdir/pareto_http.json"

echo "=== diffing the served cost cells against swim-pareto -json"
diff -u "$workdir/pareto.json" "$workdir/pareto_http.json"
grep -q '"cost"' "$workdir/pareto_http.json" || {
  echo "served envelope carries no cost blocks" >&2; exit 1; }

echo "=== probing /v1/metrics"
metrics="$(curl -sf "http://$addr/v1/metrics")"
for field in queue_depth jobs_running cache_hits cache_misses \
             shards_dispatched shard_retries workers_evicted; do
  echo "$metrics" | grep -q "\"$field\"" || {
    echo "metrics snapshot lacks $field: $metrics" >&2; exit 1; }
done
echo "$metrics" | grep -q '"cache_hits": 1' || {
  echo "metrics cache_hits != 1: $metrics" >&2; exit 1; }

echo "=== graceful drain on SIGTERM"
kill -TERM "$server_pid"
await_exit "$server_pid"
pids=""

echo "=== part B: coordinator + 2 shard workers ==="
read -r w1_pid w1_addr < <(boot_serve "$workdir/port1" -state "$workdir/state")
pids="$w1_pid"
read -r w2_pid w2_addr < <(boot_serve "$workdir/port2" -state "$workdir/state")
pids="$pids $w2_pid"
read -r coord_pid coord_addr < <(boot_serve "$workdir/portc" \
  -state "$workdir/coordstate" -coordinator "http://$w1_addr,http://$w2_addr" -shard-trials 1)
pids="$pids $coord_pid"
curl -sf "http://$coord_addr/healthz" | grep -q '"mode": "coordinator"'

echo "=== submitting the same request to the coordinator"
job_id="$(submit_job "$coord_addr" "$request")"
test -n "$job_id"
await_job "$coord_addr" "$job_id"
curl -sf "http://$coord_addr/v1/jobs/$job_id/result" >"$workdir/coord.json"

echo "=== diffing the coordinator-merged result against the CLI output"
diff -u "$workdir/cli.json" "$workdir/coord.json"

echo "=== both workers computed shards"
for waddr in "$w1_addr" "$w2_addr"; do
  if curl -sf "http://$waddr/healthz" | grep -q '"shards_executed": 0,'; then
    echo "worker $waddr computed no shards" >&2
    exit 1
  fi
done

echo "=== part C: kill one worker mid-job ==="
"$workdir/swim-scenario" -workload lenet -state "$workdir/state" \
  -nonideal "none" -times 0 -nwcs 0,0.1 \
  -policies swim -trials 12 -json "$workdir/cli12.json" >/dev/null
job_id="$(submit_job "$coord_addr" '{
  "kind": "scenario",
  "workload": "lenet",
  "scenarios": "none",
  "times": [0],
  "nwcs": [0, 0.1],
  "policies": ["swim"],
  "trials": 12,
  "seed": 4000
}')"
test -n "$job_id"
kill -9 "$w1_pid"
pids="$w2_pid $coord_pid"
echo "=== worker 1 killed; the survivor must absorb its shards"
await_job "$coord_addr" "$job_id"
curl -sf "http://$coord_addr/v1/jobs/$job_id/result" >"$workdir/coord12.json"
diff -u "$workdir/cli12.json" "$workdir/coord12.json"

echo "=== part E: SSE job-progress stream + Prometheus metrics ==="
job_id="$(submit_job "$coord_addr" '{
  "kind": "scenario",
  "workload": "lenet",
  "scenarios": "none",
  "times": [0],
  "nwcs": [0, 0.1],
  "policies": ["swim"],
  "trials": 8,
  "seed": 4001
}')"
test -n "$job_id"
# The stream follows the job live and closes itself after the terminal done
# event, so curl exits on its own once the job finishes.
curl -sN --max-time 120 "http://$coord_addr/v1/jobs/$job_id/events" \
  >"$workdir/sse.txt" &
sse_pid=$!
await_job "$coord_addr" "$job_id"
wait "$sse_pid"

grep -q '^event: done$' "$workdir/sse.txt" || {
  echo "SSE stream carried no terminal done event:" >&2
  cat "$workdir/sse.txt" >&2; exit 1; }
sed -n 's/.*"trials_done": \([0-9]*\).*/\1/p' "$workdir/sse.txt" \
  | awk 'NR > 1 && $1 < prev { exit 1 } { prev = $1 }' || {
  echo "SSE trials_done regressed:" >&2
  cat "$workdir/sse.txt" >&2; exit 1; }
grep -q '"status":"done"' "$workdir/sse.txt" || {
  echo "SSE done event lacks the job status:" >&2
  cat "$workdir/sse.txt" >&2; exit 1; }

echo "=== SSE replay of the sealed log after completion"
curl -sN --max-time 30 "http://$coord_addr/v1/jobs/$job_id/events" \
  >"$workdir/sse_replay.txt"
grep -q '^event: done$' "$workdir/sse_replay.txt" || {
  echo "post-completion SSE replay carried no done event" >&2; exit 1; }

echo "=== scraping /v1/metrics in the Prometheus text format"
prom="$(curl -sf -H 'Accept: text/plain' "http://$coord_addr/v1/metrics")"
for series in swim_shard_latency_seconds_bucket swim_shards_dispatched_total \
              swim_jobs_executed_total swim_queue_depth; do
  echo "$prom" | grep -q "^$series" || {
    echo "Prometheus exposition lacks $series" >&2
    echo "$prom" >&2; exit 1; }
done
echo "$prom" | grep '^swim_shard_latency_seconds_count' | grep -vq ' 0$' || {
  echo "shard-latency histogram recorded no observations" >&2; exit 1; }
# Content negotiation must leave the default JSON snapshot untouched.
curl -sf "http://$coord_addr/v1/metrics" | grep -q '"queue_depth"' || {
  echo "default /v1/metrics is no longer the JSON snapshot" >&2; exit 1; }

echo "=== draining the distributed topology"
kill -TERM "$coord_pid" "$w2_pid"
await_exit "$coord_pid" "$w2_pid"
pids=""

echo "serve e2e smoke: OK (single + sharded + costed results bit-identical to CLI, cache hit, metrics snapshot, worker-loss resilience, SSE progress stream, Prometheus exposition, clean drains)"
