#!/usr/bin/env bash
# Kernel-backend benchmark gate: run the BenchmarkEvalPlanKernels matrix
# (model × backend over the same compiled plan), emit the measured ns/op and
# within-run speedups to BENCH_kernels.json, and fail on a performance
# regression:
#
#   * blocked must beat scalar on the resnet workload by at least
#     SWIM_KERNEL_MIN_SPEEDUP (default 1.15; the paper-scale machine
#     measures ≥1.3, CI keeps headroom for noisy shared runners), and
#   * no backend may fall behind scalar on any model by more than
#     SWIM_KERNEL_MAX_SLOWDOWN (default 1.35 — the sparse convolution has
#     no advantage on dense stem inputs, so lenet sits near parity and the
#     bound only catches real regressions, not shared-runner jitter).
#
# Only ratios measured inside a single `go test -bench` process are
# compared: absolute ns/op on shared runners swing by 1.5x between runs,
# within-run ratios stay stable. The 0 allocs/op budget for the same
# benchmarks is enforced separately by the eval-plan allocation gate, which
# matches every BenchmarkEvalPlan* name.
set -euo pipefail

cd "$(dirname "$0")/.."

iters="${SWIM_KERNEL_BENCH_ITERS:-5}"
min_speedup="${SWIM_KERNEL_MIN_SPEEDUP:-1.15}"
max_slowdown="${SWIM_KERNEL_MAX_SLOWDOWN:-1.35}"
out_json="${SWIM_KERNEL_BENCH_JSON:-BENCH_kernels.json}"

echo "== kernel backend benchmark (${iters} evals/op per cell) =="
raw="$(go test -run '^$' -bench 'BenchmarkEvalPlanKernels' -benchtime "${iters}x" .)"
echo "$raw"

echo "$raw" | awk \
  -v min_speedup="$min_speedup" -v max_slowdown="$max_slowdown" \
  -v out_json="$out_json" -v iters="$iters" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^BenchmarkEvalPlanKernels\// {
  split($1, parts, "/")
  model = parts[2]; backend = parts[3]
  sub(/-[0-9]+$/, "", backend)   # strip the -GOMAXPROCS suffix
  ns[model "/" backend] = $3
  if (!(model in seen_model)) { seen_model[model] = 1; models[++nm] = model }
  if (!(backend in seen_backend)) { seen_backend[backend] = 1; backends[++nb] = backend }
}
END {
  if (nm == 0) { print "bench_kernels: no BenchmarkEvalPlanKernels results parsed" > "/dev/stderr"; exit 1 }
  printf "{\n  \"benchmark\": \"BenchmarkEvalPlanKernels\",\n" > out_json
  printf "  \"evals_per_op\": %d,\n", iters > out_json
  printf "  \"cpu\": \"%s\",\n", cpu > out_json
  printf "  \"gate\": {\"min_blocked_speedup_resnet\": %s, \"max_slowdown_any\": %s},\n", min_speedup, max_slowdown > out_json
  printf "  \"ns_per_op\": {" > out_json
  for (i = 1; i <= nm; i++) {
    m = models[i]
    printf "%s\n    \"%s\": {", (i > 1 ? "," : ""), m > out_json
    for (j = 1; j <= nb; j++) {
      b = backends[j]
      printf "%s\"%s\": %d", (j > 1 ? ", " : ""), b, ns[m "/" b] > out_json
    }
    printf "}" > out_json
  }
  printf "\n  },\n  \"speedup_vs_scalar\": {" > out_json
  for (i = 1; i <= nm; i++) {
    m = models[i]
    printf "%s\n    \"%s\": {", (i > 1 ? "," : ""), m > out_json
    first = 1
    for (j = 1; j <= nb; j++) {
      b = backends[j]
      if (b == "scalar" || ns[m "/scalar"] == 0) continue
      printf "%s\"%s\": %.3f", (first ? "" : ", "), b, ns[m "/scalar"] / ns[m "/" b] > out_json
      first = 0
    }
    printf "}" > out_json
  }
  printf "\n  }\n}\n" > out_json

  status = 0
  for (i = 1; i <= nm; i++) {
    m = models[i]
    for (j = 1; j <= nb; j++) {
      b = backends[j]
      if (b == "scalar") continue
      sp = ns[m "/scalar"] / ns[m "/" b]
      printf "%s/%s: %.2fx vs scalar\n", m, b, sp
      if (sp * max_slowdown < 1) {
        printf "FAIL: %s on %s is %.2fx slower than scalar (budget %.2fx)\n", b, m, 1 / sp, max_slowdown > "/dev/stderr"
        status = 1
      }
    }
  }
  sp = ns["resnet/scalar"] / ns["resnet/blocked"]
  if (sp < min_speedup) {
    printf "FAIL: blocked on resnet is %.2fx vs scalar, want >= %.2fx\n", sp, min_speedup > "/dev/stderr"
    status = 1
  }
  exit status
}'

echo "wrote ${out_json}"
