// crossbar_inference runs a trained classifier head on the structural
// crossbar simulator (package crossbar): weights bit-sliced onto K-bit
// devices in differential pairs, DAC-quantized inputs, analog column sums and
// ADC-quantized outputs. It cross-checks the analog results against the
// digital reference and shows how write-verifying the array tightens them —
// connecting the paper's behavioural noise model (package mapping) to the
// physical array it abstracts.
//
// Run with: go run ./examples/crossbar_inference
package main

import (
	"fmt"
	"math"
	"os"

	"swim/internal/crossbar"
	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/nn"
	"swim/internal/rng"
	"swim/internal/train"
)

func main() {
	// A linear classifier is exactly one crossbar array.
	ds := data.MNISTLike(800, 400, 5)
	r := rng.New(6)
	net := nn.NewNetwork("linear", nn.NewSequential("trunk",
		nn.NewFlatten(),
		nn.NewLinear("fc", 28*28, 10, r),
	), nn.NewSoftmaxCrossEntropy())
	cfg := train.DefaultConfig()
	cfg.Epochs = 4
	train.SGD(net, ds, cfg, r)
	fmt.Printf("digital reference accuracy: %.2f%%\n", train.Evaluate(net, ds.TestX, ds.TestY, 64))

	fc := net.Trunk.Layers[1].(*nn.Linear)
	dev := device.Default(6, 0.3)
	fabric := crossbar.DefaultConfig(dev)

	evalAnalog := func(a *crossbar.Array) float64 {
		correct := 0
		sample := 28 * 28
		for i, label := range ds.TestY {
			x := ds.TestX.Data[i*sample : (i+1)*sample]
			y := a.MatVec(x)
			best, bj := math.Inf(-1), 0
			for j, v := range y {
				if v > best {
					best, bj = v, j
				}
			}
			if bj == label {
				correct++
			}
		}
		return 100 * float64(correct) / float64(len(ds.TestY))
	}

	arr, err := crossbar.NewArray(fabric, fc.W.Data, rng.New(7))
	if err != nil {
		fmt.Fprintln(os.Stderr, "crossbar_inference:", err)
		os.Exit(1)
	}
	out, in := arr.Shape()
	fmt.Printf("array: %dx%d weights on %d tile(s), %d devices/weight (K=%d)\n",
		out, in, arr.Tiles(), dev.NumDevices(), dev.DeviceBits)
	fmt.Printf("analog accuracy, unverified writes (sigma=%.1f): %.2f%%\n", dev.Sigma, evalAnalog(arr))

	// Write-verify the full array and re-measure.
	wr := rng.New(8)
	cycles := 0
	for o := 0; o < out; o++ {
		for i := 0; i < in; i++ {
			cycles += arr.WriteVerify(o, i, wr)
		}
	}
	fmt.Printf("analog accuracy after write-verify (%d cycles, %.1f/weight): %.2f%%\n",
		cycles, float64(cycles)/float64(out*in), evalAnalog(arr))
}
