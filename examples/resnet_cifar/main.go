// resnet_cifar exercises SWIM on a deep residual network — the paper's
// Fig. 2b setting: ResNet-18 on a CIFAR-like task, quantized to 6 bits. It
// demonstrates that the second-derivative backprop handles skip connections,
// batch normalization and strided projections, and compares SWIM to random
// selection at a 10% write budget.
//
// Run with: go run ./examples/resnet_cifar
package main

import (
	"fmt"
	"os"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/mapping"
	"swim/internal/models"
	"swim/internal/rng"
	"swim/internal/stat"
	"swim/internal/swim"
	"swim/internal/train"
)

func main() {
	fmt.Println("training a slim ResNet-18 (6-bit) on the CIFAR-like task...")
	ds := data.CIFARLike(1000, 400, 21)
	r := rng.New(22)
	net := models.ResNet18(10, 6, 6, r)
	cfg := train.DefaultConfig()
	cfg.Epochs = 6
	cfg.QATBits = 6
	cfg.Log = os.Stdout
	train.SGD(net, ds, cfg, r)
	clean := train.Evaluate(net, ds.TestX, ds.TestY, 64)
	fmt.Printf("clean accuracy %.2f%% with %d mapped weights across %d tensors\n\n",
		clean, net.NumMappedWeights(), len(net.MappedParams()))

	calX, calY := data.Subset(ds.TrainX, ds.TrainY, 256)
	hess := swim.Sensitivity(net, calX, calY, 32)
	weights := swim.FlatWeights(net)
	fmt.Println("sensitivities computed through 8 residual blocks in one pass")

	dm := device.Default(6, 1.0)
	table := dm.CycleTable(300, rng.New(99))
	for _, mode := range []struct {
		name string
		sel  swim.Selector
	}{
		{"swim", swim.NewSWIMSelector(hess, weights)},
		{"random", swim.NewRandomSelector(net.NumMappedWeights())},
	} {
		var acc stat.Welford
		base := rng.New(1234)
		for t := 0; t < 4; t++ {
			tr := base.Split()
			mp := mapping.New(net, dm, table, tr)
			swim.WriteVerifyToNWC(mp, mode.sel.Order(tr), 0.1, tr)
			acc.Add(mp.Accuracy(ds.TestX, ds.TestY, 64))
		}
		fmt.Printf("NWC 0.1 via %-7s accuracy %s\n", mode.name, acc.String())
	}
}
