// resnet_cifar exercises SWIM on a deep residual network — the paper's
// Fig. 2b setting: ResNet-18 on a CIFAR-like task, quantized to 6 bits. It
// demonstrates that the second-derivative backprop handles skip connections,
// batch normalization and strided projections, and compares the "swim" and
// "random" registry policies at a 10% write budget on one shared pipeline
// configuration.
//
// Run with: go run ./examples/resnet_cifar
package main

import (
	"context"
	"fmt"
	"os"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/models"
	"swim/internal/program"
	"swim/internal/rng"
	"swim/internal/swim"
	"swim/internal/train"
)

func main() {
	fmt.Println("training a slim ResNet-18 (6-bit) on the CIFAR-like task...")
	ds := data.CIFARLike(1000, 400, 21)
	r := rng.New(22)
	net := models.ResNet18(10, 6, 6, r)
	cfg := train.DefaultConfig()
	cfg.Epochs = 6
	cfg.QATBits = 6
	cfg.Log = os.Stdout
	train.SGD(net, ds, cfg, r)
	clean := train.Evaluate(net, ds.TestX, ds.TestY, 64)
	fmt.Printf("clean accuracy %.2f%% with %d mapped weights across %d tensors\n\n",
		clean, net.NumMappedWeights(), len(net.MappedParams()))

	calX, calY := data.Subset(ds.TrainX, ds.TrainY, 256)
	hess := swim.Sensitivity(net, calX, calY, 32)
	weights := swim.FlatWeights(net)
	fmt.Println("sensitivities computed through 8 residual blocks in one pass")

	for _, name := range []string{"swim", "random"} {
		pol, err := program.Lookup(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resnet_cifar:", err)
			os.Exit(1)
		}
		p, err := program.New(net, pol, program.GridBudget(0.1),
			program.WithDevice(device.Default(6, 1.0)),
			program.WithEval(ds.TestX, ds.TestY),
			program.WithSensitivity(hess, weights),
			program.WithSeed(1234),
			program.WithTrials(4),
		)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resnet_cifar:", err)
			os.Exit(1)
		}
		res, err := p.Run(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "resnet_cifar:", err)
			os.Exit(1)
		}
		fmt.Printf("NWC 0.1 via %-7s accuracy %s\n", res.Policy, res.Points[0].Accuracy)
	}
}
