// Quickstart: the complete SWIM pipeline in one file.
//
// It trains a small quantized network, computes per-weight sensitivities with
// the single-pass second-derivative backprop, and runs the program pipeline:
// the network is mapped onto simulated NVM devices and write-verifying just
// the top 10% most sensitive weights recovers almost all of the accuracy
// lost to programming noise — the paper's headline result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/models"
	"swim/internal/program"
	"swim/internal/rng"
	"swim/internal/swim"
	"swim/internal/train"
)

func main() {
	// 1. A trained, quantization-aware model (the paper's starting point).
	fmt.Println("== 1. train a 4-bit LeNet on the MNIST-like task")
	ds := data.MNISTLike(1200, 600, 1)
	r := rng.New(2)
	net := models.LeNet(10, 4, r)
	cfg := train.DefaultConfig()
	cfg.Epochs = 6
	cfg.QATBits = 4
	cfg.Log = os.Stdout
	train.SGD(net, ds, cfg, r)
	clean := train.Evaluate(net, ds.TestX, ds.TestY, 64)
	fmt.Printf("clean accuracy: %.2f%%  (%d crossbar-mapped weights)\n\n", clean, net.NumMappedWeights())

	// 2. Sensitivity: one forward + one second-derivative backward pass.
	fmt.Println("== 2. compute per-weight sensitivities (Hessian diagonal)")
	calX, calY := data.Subset(ds.TrainX, ds.TrainY, 512)
	hess := swim.Sensitivity(net, calX, calY, 64)
	weights := swim.FlatWeights(net)
	fmt.Printf("sensitivities computed for %d weights in a single pass\n\n", len(hess))

	// 3. One pipeline run walks the whole write-budget grid: the "swim"
	// policy resolves from the registry, the fixed-NWC budget is a value,
	// and the Result aggregates accuracy mean ± std over parallel
	// Monte-Carlo trials.
	fmt.Println("== 3. program onto NVM devices (sigma = 1.0) and selectively write-verify")
	pol, err := program.Lookup("swim")
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	p, err := program.New(net, pol, program.GridBudget(0, 0.1, 0.5, 1.0),
		program.WithDevice(device.Default(4, 1.0)),
		program.WithEval(ds.TestX, ds.TestY),
		program.WithSensitivity(hess, weights),
		program.WithSeed(1234),
		program.WithTrials(6),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	for _, pt := range res.Points {
		fmt.Printf("NWC %.1f  accuracy %s\n", pt.Target, pt.Accuracy)
	}
	fmt.Println("\nwrite-verifying ~10% of weights (NWC 0.1) recovers nearly the full-")
	fmt.Println("verify accuracy: that is SWIM's ~10x programming speedup.")
}
