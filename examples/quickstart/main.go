// Quickstart: the complete SWIM pipeline in one file.
//
// It trains a small quantized network, computes per-weight sensitivities with
// the single-pass second-derivative backprop, maps the network onto simulated
// NVM devices, and shows that write-verifying just the top 10% most sensitive
// weights recovers almost all of the accuracy lost to programming noise —
// the paper's headline result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/mapping"
	"swim/internal/models"
	"swim/internal/rng"
	"swim/internal/stat"
	"swim/internal/swim"
	"swim/internal/train"
)

func main() {
	// 1. A trained, quantization-aware model (the paper's starting point).
	fmt.Println("== 1. train a 4-bit LeNet on the MNIST-like task")
	ds := data.MNISTLike(1200, 600, 1)
	r := rng.New(2)
	net := models.LeNet(10, 4, r)
	cfg := train.DefaultConfig()
	cfg.Epochs = 6
	cfg.QATBits = 4
	cfg.Log = os.Stdout
	train.SGD(net, ds, cfg, r)
	clean := train.Evaluate(net, ds.TestX, ds.TestY, 64)
	fmt.Printf("clean accuracy: %.2f%%  (%d crossbar-mapped weights)\n\n", clean, net.NumMappedWeights())

	// 2. Sensitivity: one forward + one second-derivative backward pass.
	fmt.Println("== 2. compute per-weight sensitivities (Hessian diagonal)")
	calX, calY := data.Subset(ds.TrainX, ds.TrainY, 512)
	hess := swim.Sensitivity(net, calX, calY, 64)
	weights := swim.FlatWeights(net)
	sel := swim.NewSWIMSelector(hess, weights)
	fmt.Printf("sensitivities computed for %d weights in a single pass\n\n", len(hess))

	// 3. Map to devices and compare write budgets.
	fmt.Println("== 3. program onto NVM devices (sigma = 1.0) and selectively write-verify")
	dm := device.Default(4, 1.0)
	table := dm.CycleTable(300, rng.New(99))
	for _, nwc := range []float64{0, 0.1, 0.5, 1.0} {
		var acc stat.Welford
		base := rng.New(1234)
		for t := 0; t < 6; t++ {
			tr := base.Split()
			mp := mapping.New(net, dm, table, tr)
			swim.WriteVerifyToNWC(mp, sel.Order(tr), nwc, tr)
			acc.Add(mp.Accuracy(ds.TestX, ds.TestY, 64))
		}
		fmt.Printf("NWC %.1f  accuracy %s\n", nwc, acc.String())
	}
	fmt.Println("\nwrite-verifying ~10% of weights (NWC 0.1) recovers nearly the full-")
	fmt.Println("verify accuracy: that is SWIM's ~10x programming speedup.")
}
