// lenet_mnist reproduces the paper's Algorithm 1 end to end on LeNet: given a
// maximum acceptable accuracy drop δA, iteratively write-verify 5% granules
// of the most sensitive weights until the mapped accuracy is within δA of the
// clean model, and report the NWC (programming time) each selector needs.
//
// Run with: go run ./examples/lenet_mnist -drop 1.0
package main

import (
	"flag"
	"fmt"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/mapping"
	"swim/internal/models"
	"swim/internal/rng"
	"swim/internal/swim"
	"swim/internal/train"
)

func main() {
	drop := flag.Float64("drop", 1.0, "maximum acceptable accuracy drop (percentage points)")
	sigma := flag.Float64("sigma", 1.0, "device variation before write-verify")
	flag.Parse()

	ds := data.MNISTLike(1500, 800, 1)
	r := rng.New(2)
	net := models.LeNet(10, 4, r)
	cfg := train.DefaultConfig()
	cfg.Epochs = 6
	cfg.QATBits = 4
	train.SGD(net, ds, cfg, r)
	clean := train.Evaluate(net, ds.TestX, ds.TestY, 64)
	fmt.Printf("clean accuracy %.2f%%, target: within %.2f pp after mapping (sigma=%.2f)\n\n",
		clean, *drop, *sigma)

	calX, calY := data.Subset(ds.TrainX, ds.TrainY, 512)
	hess := swim.Sensitivity(net, calX, calY, 64)
	weights := swim.FlatWeights(net)

	dm := device.Default(4, *sigma)
	table := dm.CycleTable(300, rng.New(99))

	for _, sel := range []swim.Selector{
		swim.NewSWIMSelector(hess, weights),
		swim.NewMagnitudeSelector(weights),
		swim.NewRandomSelector(net.NumMappedWeights()),
	} {
		tr := rng.New(7)
		mp := mapping.New(net, dm, table, tr)
		res := swim.Algorithm1(mp, sel, 0.05, clean, *drop, ds.TestX, ds.TestY, 64, tr)
		last := res.Steps[len(res.Steps)-1]
		status := "met"
		if !res.Achieved {
			status = "NOT met"
		}
		fmt.Printf("%-10s target %s: NWC %.2f, %.0f%% of weights verified, final accuracy %.2f%%\n",
			sel.Name(), status, last.NWC, 100*last.FractionVerified, last.Accuracy)
		for _, s := range res.Steps {
			fmt.Printf("    verified %5.1f%%  NWC %.3f  accuracy %.2f%%\n",
				100*s.FractionVerified, s.NWC, s.Accuracy)
		}
	}
}
