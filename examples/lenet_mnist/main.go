// lenet_mnist reproduces the paper's Algorithm 1 end to end on LeNet: given a
// maximum acceptable accuracy drop δA, iteratively write-verify 5% granules
// of the most sensitive weights until the mapped accuracy is within δA of the
// clean model, and report the NWC (programming time) each policy needs.
//
// Each policy runs as a drop-budget program pipeline: the stopping rule is a
// Budget value, the ranking is a registry Policy, and the Result carries the
// per-granule accuracy trace that used to require hand-rolled loops.
//
// Run with: go run ./examples/lenet_mnist -drop 1.0
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/models"
	"swim/internal/program"
	"swim/internal/rng"
	"swim/internal/swim"
	"swim/internal/train"
)

func main() {
	drop := flag.Float64("drop", 1.0, "maximum acceptable accuracy drop (percentage points)")
	sigma := flag.Float64("sigma", 1.0, "device variation before write-verify")
	flag.Parse()

	ds := data.MNISTLike(1500, 800, 1)
	r := rng.New(2)
	net := models.LeNet(10, 4, r)
	cfg := train.DefaultConfig()
	cfg.Epochs = 6
	cfg.QATBits = 4
	train.SGD(net, ds, cfg, r)
	clean := train.Evaluate(net, ds.TestX, ds.TestY, 64)
	fmt.Printf("clean accuracy %.2f%%, target: within %.2f pp after mapping (sigma=%.2f)\n\n",
		clean, *drop, *sigma)

	calX, calY := data.Subset(ds.TrainX, ds.TrainY, 512)
	hess := swim.Sensitivity(net, calX, calY, 64)
	weights := swim.FlatWeights(net)

	for _, name := range []string{"swim", "magnitude", "random"} {
		pol, err := program.Lookup(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lenet_mnist:", err)
			os.Exit(1)
		}
		p, err := program.New(net, pol, program.DropBudget(clean, *drop),
			program.WithDevice(device.Default(4, *sigma)),
			program.WithEval(ds.TestX, ds.TestY),
			program.WithSensitivity(hess, weights),
			program.WithGranularity(0.05),
			program.WithSeed(7),
			program.WithTrials(1),
		)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lenet_mnist:", err)
			os.Exit(1)
		}
		res, err := p.Run(context.Background())
		status := "met"
		switch {
		case errors.Is(err, program.ErrBudgetExhausted):
			status = "NOT met"
		case err != nil:
			fmt.Fprintln(os.Stderr, "lenet_mnist:", err)
			os.Exit(1)
		}
		last := res.Trace[len(res.Trace)-1]
		fmt.Printf("%-10s target %s: NWC %.2f, %.0f%% of weights verified, final accuracy %.2f%%\n",
			res.Policy, status, res.NWC.Mean(), 100*last.FractionVerified, last.Accuracy.Mean())
		for _, s := range res.Trace {
			fmt.Printf("    verified %5.1f%%  NWC %.3f  accuracy %.2f%%\n",
				100*s.FractionVerified, s.NWC.Mean(), s.Accuracy.Mean())
		}
	}
}
