// obd_pruning demonstrates the Optimal-Brain-Damage-style extension of
// SWIM's sensitivity metric: the same single-pass second derivatives that
// pick weights to write-verify also identify weights that need no device at
// all. Pruning the low-saliency half of a converged LeNet costs almost no
// accuracy, shrinks the crossbar footprint, and compounds with selective
// write-verify (fewer devices to program AND fewer to verify).
//
// Run with: go run ./examples/obd_pruning
package main

import (
	"context"
	"fmt"
	"os"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/models"
	"swim/internal/program"
	"swim/internal/rng"
	"swim/internal/swim"
	"swim/internal/train"
)

func main() {
	ds := data.MNISTLike(1500, 800, 1)
	r := rng.New(2)
	net := models.LeNet(10, 4, r)
	cfg := train.DefaultConfig()
	cfg.Epochs = 6
	cfg.QATBits = 4
	train.SGD(net, ds, cfg, r)
	clean := train.Evaluate(net, ds.TestX, ds.TestY, 64)

	calX, calY := data.Subset(ds.TrainX, ds.TrainY, 512)
	hess := swim.Sensitivity(net, calX, calY, 64)
	fmt.Printf("clean accuracy %.2f%%, baseline sparsity %.1f%%\n",
		clean, 100*swim.SparsityOf(net))

	for _, frac := range []float64{0.25, 0.5, 0.75} {
		pruned := net.Clone()
		n := swim.PruneBySensitivity(pruned, hess, frac)
		acc := train.Evaluate(pruned, ds.TestX, ds.TestY, 64)
		fmt.Printf("prune %2.0f%% by OBD saliency: %5d weights zeroed, accuracy %.2f%% (sparsity %.1f%%)\n",
			100*frac, n, acc, 100*swim.SparsityOf(pruned))
	}

	// Pruning + SWIM write-verify stack: map the half-pruned model through
	// the program pipeline and verify the top 10% most sensitive of what
	// remains. The pipeline recomputes sensitivities for the pruned network
	// from the calibration split on its own (WithCalibration).
	fmt.Println("\npruned 50% + SWIM write-verify at NWC 0.1 under sigma = 1.0:")
	pruned := net.Clone()
	swim.PruneBySensitivity(pruned, hess, 0.5)
	pol, err := program.Lookup("swim")
	if err != nil {
		fmt.Fprintln(os.Stderr, "obd_pruning:", err)
		os.Exit(1)
	}
	p, err := program.New(pruned, pol, program.GridBudget(0.1),
		program.WithDevice(device.Default(4, 1.0)),
		program.WithEval(ds.TestX, ds.TestY),
		program.WithCalibration(calX, calY),
		program.WithSeed(1234),
		program.WithTrials(6),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obd_pruning:", err)
		os.Exit(1)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "obd_pruning:", err)
		os.Exit(1)
	}
	fmt.Printf("on-device accuracy: %s (half the devices, a tenth of the write cycles)\n",
		res.Points[0].Accuracy)
}
